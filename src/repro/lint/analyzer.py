"""AST analysis implementing the simlint rule set.

The analyzer runs in two passes:

* **Pass A** (:func:`build_registry`) scans *all* files under analysis
  and records, by name, which attributes and variables are declared as
  sets (``self.auth_nodes: Set[int]``, ``node.gem_auth = set()``),
  which dict attributes hold sets as values, and which functions are
  annotated to return sets.  Names are matched without receiver types
  -- a deliberate over-approximation: in a simulator whose core
  guarantee is determinism, anything *named* like a set is treated as
  one, and false positives are handled by ``sorted()`` or an explicit
  suppression.

* **Pass B** (:class:`FileAnalyzer`) walks each file with the global
  registry and emits findings for the DET/SIM rules.

The rules are heuristics with precise, documented trigger conditions
(docs/LINTING.md); they are tuned to the idioms of this codebase.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding

__all__ = ["Registry", "build_registry", "FileAnalyzer", "analyze_source"]


# --------------------------------------------------------------------------
# Annotation helpers
# --------------------------------------------------------------------------

_SET_TYPE_NAMES = {"Set", "FrozenSet", "set", "frozenset", "AbstractSet", "MutableSet"}
_DICT_TYPE_NAMES = {
    "Dict",
    "dict",
    "DefaultDict",
    "defaultdict",
    "Mapping",
    "MutableMapping",
    "OrderedDict",
}
_WRAPPER_TYPE_NAMES = {"Optional", "Union", "Final", "ClassVar", "Annotated"}

#: Builtins whose result does not depend on argument iteration order.
_ORDER_INSENSITIVE = {
    "sorted",
    "set",
    "frozenset",
    "len",
    "any",
    "all",
    "min",
    "max",
    "sum",
    "fsum",
}

_SET_METHOD_NAMES = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}

#: time-module members that read the host wall clock.
_TIME_MEMBERS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock",
}

#: Identifier fragments that mark a heap-tuple element as a tie-break key.
_SEQ_FRAGMENTS = ("seq", "count", "serial", "tick", "tie")


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Rightmost identifier of a Name / Attribute chain, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _resolve_annotation(node: Optional[ast.AST]) -> Optional[ast.AST]:
    """Unquote string annotations so they can be inspected as AST."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    return node


def _is_set_annotation(node: Optional[ast.AST]) -> bool:
    node = _resolve_annotation(node)
    if node is None:
        return False
    name = _terminal_name(node)
    if name in _SET_TYPE_NAMES:
        return True
    if isinstance(node, ast.Subscript):
        base = _terminal_name(node.value)
        if base in _SET_TYPE_NAMES:
            return True
        if base in _WRAPPER_TYPE_NAMES:
            slice_node = node.slice
            args = (
                list(slice_node.elts)
                if isinstance(slice_node, ast.Tuple)
                else [slice_node]
            )
            return any(_is_set_annotation(arg) for arg in args)
    return False


def _is_dict_of_set_annotation(node: Optional[ast.AST]) -> bool:
    node = _resolve_annotation(node)
    if not isinstance(node, ast.Subscript):
        return False
    base = _terminal_name(node.value)
    if base in _WRAPPER_TYPE_NAMES:
        slice_node = node.slice
        args = (
            list(slice_node.elts)
            if isinstance(slice_node, ast.Tuple)
            else [slice_node]
        )
        return any(_is_dict_of_set_annotation(arg) for arg in args)
    if base not in _DICT_TYPE_NAMES:
        return False
    slice_node = node.slice
    if isinstance(slice_node, ast.Tuple) and len(slice_node.elts) == 2:
        return _is_set_annotation(slice_node.elts[1])
    return False


# --------------------------------------------------------------------------
# Pass A: the cross-file registry
# --------------------------------------------------------------------------


@dataclass
class Registry:
    """Names known (from declarations anywhere in the tree) to be sets.

    Only *attribute* names (``self.auth_nodes: Set[int]``) and function
    names (``def waiting_for(...) -> Set[int]``) are shared across
    files: they name a stable API surface.  Bare variable names stay
    module-local (see :class:`FileAnalyzer`) -- a local ``nodes =
    set()`` in one module must not taint an unrelated ``cluster.nodes``
    list elsewhere.
    """

    set_attrs: Set[str] = field(default_factory=set)
    dict_of_set_attrs: Set[str] = field(default_factory=set)
    set_returning: Set[str] = field(default_factory=set)


class _RegistryCollector(ast.NodeVisitor):
    def __init__(self, registry: Registry):
        self.registry = registry

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            if _is_set_annotation(node.annotation):
                self.registry.set_attrs.add(node.target.attr)
            elif _is_dict_of_set_annotation(node.annotation):
                self.registry.dict_of_set_attrs.add(node.target.attr)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_display(node.value):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    self.registry.set_attrs.add(target.attr)
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        if _is_set_annotation(node.returns):
            self.registry.set_returning.add(node.name)
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


class _LocalNameCollector(ast.NodeVisitor):
    """Module-local variable names declared or assigned as sets."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()
        self.dict_of_set_names: Set[str] = set()

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation):
                self.set_names.add(node.target.id)
            elif _is_dict_of_set_annotation(node.annotation):
                self.dict_of_set_names.add(node.target.id)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_display(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        for arg in [*node.args.args, *node.args.kwonlyargs]:
            if _is_set_annotation(arg.annotation):
                self.set_names.add(arg.arg)
            elif _is_dict_of_set_annotation(arg.annotation):
                self.dict_of_set_names.add(arg.arg)
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def _is_set_display(node: ast.AST) -> bool:
    """A syntactic set constructor: ``{..}``, ``set(..)``, comprehension."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _terminal_name(node.func) in {"set", "frozenset"}
    return False


def build_registry(trees: Sequence[ast.AST]) -> Registry:
    """Collect set declarations across all parsed modules."""
    registry = Registry()
    collector = _RegistryCollector(registry)
    for tree in trees:
        collector.visit(tree)
    return registry


# --------------------------------------------------------------------------
# Pass B: per-file analysis
# --------------------------------------------------------------------------


class FileAnalyzer(ast.NodeVisitor):
    """Emit findings for one module, given the cross-file registry."""

    def __init__(self, path: str, tree: ast.AST, registry: Registry):
        self.path = path
        self.tree = tree
        self.registry = registry
        self.findings: List[Finding] = []
        #: module alias -> real module name ('import random as rnd').
        self.module_aliases: Dict[str, str] = {}
        local = _LocalNameCollector()
        local.visit(tree)
        self.set_names = local.set_names
        self.dict_of_set_names = local.dict_of_set_names
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- plumbing -------------------------------------------------------

    def run(self) -> List[Finding]:
        self.visit(self.tree)
        return self.findings

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                rule,
                message,
            )
        )

    def _parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def _module_of(self, node: ast.AST) -> Optional[str]:
        """Real module name if ``node`` is a bare module reference."""
        if isinstance(node, ast.Name):
            return self.module_aliases.get(node.id)
        return None

    # -- set-typed expression inference --------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if _is_set_display(node):
            return True
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body) or self._is_set_expr(node.orelse)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return node.attr in self.registry.set_attrs
        if isinstance(node, ast.Subscript):
            return self._is_dict_of_set(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            func_name = _terminal_name(func)
            if func_name in {"set", "frozenset"}:
                return True
            if func_name in self.registry.set_returning:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_METHOD_NAMES and self._is_set_expr(func.value):
                    return True
                if func.attr == "copy" and self._is_set_expr(func.value):
                    return True
                if func.attr in {"get", "pop", "setdefault"}:
                    # dict-of-set lookup, or any lookup whose default
                    # argument is a set (``d.pop(k, set())``).
                    if self._is_dict_of_set(func.value):
                        return True
                    if len(node.args) >= 2 and self._is_set_expr(node.args[1]):
                        return True
            if func_name == "iter" and node.args:
                return self._is_set_expr(node.args[0])
        return False

    def _is_dict_of_set(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.dict_of_set_names
        if isinstance(node, ast.Attribute):
            return node.attr in self.registry.dict_of_set_attrs
        return False

    def _is_fs_listing(self, node: ast.AST) -> bool:
        """A call returning entries in OS-dependent order."""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Attribute):
            module = self._module_of(func.value)
            if module == "os" and func.attr in {"listdir", "scandir"}:
                return True
            if module == "glob" and func.attr in {"glob", "iglob"}:
                return True
            if func.attr in {"iterdir", "glob", "rglob", "scandir"}:
                return True
        elif isinstance(func, ast.Name):
            if func.id in {"listdir", "scandir", "iglob"}:
                return True
        return False

    def _is_unordered(self, node: ast.AST) -> bool:
        return self._is_set_expr(node) or self._is_fs_listing(node)

    def _order_insensitive_context(self, node: ast.AST) -> bool:
        """True if ``node`` is consumed where iteration order cannot matter."""
        parent = self._parent(node)
        if isinstance(parent, ast.Call) and node in parent.args:
            if _terminal_name(parent.func) in _ORDER_INSENSITIVE:
                return True
        if isinstance(parent, ast.Compare):
            # Membership / equality tests are order-free.
            return True
        return False

    def _describe(self, node: ast.AST) -> str:
        name = _terminal_name(node)
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            return f"call to {name}()" if name else "call"
        return repr(name) if name else "expression"

    # -- imports (aliases + DET002 on from-imports) ---------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = [
                a.name
                for a in node.names
                if a.name not in {"Random", "SystemRandom"}
            ]
            if bad:
                self._flag(
                    node,
                    "DET002",
                    f"import of global random state ({', '.join(bad)}); draw "
                    "from a seeded repro.sim.rng.Stream instead",
                )
        elif node.module == "time":
            bad = [a.name for a in node.names if a.name in _TIME_MEMBERS]
            if bad:
                self._flag(
                    node,
                    "DET002",
                    f"import of wall-clock function ({', '.join(bad)}); "
                    "simulation time must come from sim.now",
                )
        elif node.module == "uuid":
            self._flag(
                node,
                "DET002",
                "uuid identifiers are process-dependent; use explicit "
                "sequence numbers",
            )
        self.generic_visit(node)

    # -- DET001 / DET003: unordered iteration ---------------------------

    def _check_iteration(self, iter_node: ast.AST, where: ast.AST) -> None:
        if self._is_unordered(iter_node):
            self._flag(
                where,
                "DET001",
                f"iteration over unordered {self._describe(iter_node)}; "
                "wrap in sorted() with a total-order key",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        # Building a set from a set is order-free; everything else
        # materialises the arbitrary order (unless consumed by an
        # order-insensitive builtin such as sorted()).
        if isinstance(node, ast.SetComp):
            self.generic_visit(node)
            return
        if not self._order_insensitive_context(node):
            for generator in node.generators:
                self._check_iteration(generator.iter, node)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    # -- calls: most rules trigger here ---------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        func_name = _terminal_name(func)

        # DET001: arbitrary-element pick / order materialisation.
        if func_name == "iter" and node.args and self._is_set_expr(node.args[0]):
            self._flag(
                node,
                "DET001",
                "iter() over a set picks an arbitrary element; use "
                "min()/max() with a total-order key",
            )
        elif (
            func_name in {"list", "tuple"}
            and node.args
            and self._is_unordered(node.args[0])
            and not self._order_insensitive_context(node)
        ):
            self._flag(
                node,
                "DET001",
                f"{func_name}() materialises unordered "
                f"{self._describe(node.args[0])}; use sorted()",
            )
        elif self._is_fs_listing(node) and not self._order_insensitive_context(
            node
        ):
            parent = self._parent(node)
            inside_sorted = (
                isinstance(parent, ast.Call)
                and _terminal_name(parent.func) == "sorted"
            )
            if not inside_sorted and not self._iterated_by_checked_node(node):
                self._flag(
                    node,
                    "DET001",
                    f"{self._describe(node)} returns entries in "
                    "OS-dependent order; wrap in sorted()",
                )

        # DET003: float accumulation over unordered iterables.
        if func_name == "sum" and node.args:
            arg = node.args[0]
            unordered = self._is_unordered(arg)
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp)) and any(
                self._is_unordered(g.iter) for g in arg.generators
            ):
                # sum(1 for ...) counts; integers add associatively.
                elt = arg.elt
                if not (
                    isinstance(elt, ast.Constant) and isinstance(elt.value, int)
                ):
                    unordered = True
            if unordered:
                self._flag(
                    node,
                    "DET003",
                    "sum() over an unordered iterable makes float totals "
                    "order-dependent; sort first or use math.fsum",
                )

        # DET002: global randomness / wall clock / uuid.
        if isinstance(func, ast.Attribute):
            module = self._module_of(func.value)
            if module == "random" and func.attr not in {"Random", "SystemRandom"}:
                self._flag(
                    node,
                    "DET002",
                    f"random.{func.attr}() uses global, unseeded state; "
                    "draw from a seeded repro.sim.rng.Stream",
                )
            elif module == "time" and func.attr in _TIME_MEMBERS:
                self._flag(
                    node,
                    "DET002",
                    f"time.{func.attr}() reads the host wall clock; "
                    "simulated time must come from sim.now",
                )
            elif module == "uuid" and func.attr.startswith("uuid"):
                self._flag(
                    node,
                    "DET002",
                    f"uuid.{func.attr}() is process-dependent; use explicit "
                    "sequence numbers",
                )
            elif func.attr in {"utcnow", "now", "today"} and (
                module == "datetime"
                or _terminal_name(func.value) in {"datetime", "date"}
            ):
                self._flag(
                    node,
                    "DET002",
                    f"{func.attr}() reads the host wall clock; simulation "
                    "results must not depend on it",
                )

        # DET002: id()-based ordering.
        if func_name == "id" and isinstance(func, ast.Name) and node.args:
            if self._in_ordering_context(node):
                self._flag(
                    node,
                    "DET002",
                    "id() differs across interpreters; order by an explicit "
                    "sequence number instead",
                )

        # SIM002: recorder span outside a with-statement.
        if isinstance(func, ast.Attribute) and func.attr == "span":
            if not self._is_with_context(node):
                self._flag(
                    node,
                    "SIM002",
                    "span() must be used as `with recorder.span(...)`: a "
                    "push without a guaranteed pop corrupts the span stack "
                    "on exception unwind",
                )

        # SIM003: heap entries without a total-order tie-break.
        if func_name in {"heappush", "heappushpop", "heapreplace"}:
            if len(node.args) >= 2:
                self._check_heap_entry(node.args[1])

        self.generic_visit(node)

    def _iterated_by_checked_node(self, node: ast.AST) -> bool:
        """True when a For/comprehension already reports this iterable."""
        parent = self._parent(node)
        if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
            return True
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            return True
        return False

    def _in_ordering_context(self, node: ast.AST) -> bool:
        current: Optional[ast.AST] = node
        while current is not None:
            parent = self._parent(current)
            if isinstance(parent, ast.keyword) and parent.arg == "key":
                return True
            if isinstance(parent, ast.Compare):
                return True
            if isinstance(parent, ast.Call):
                name = _terminal_name(parent.func)
                if name in {"heappush", "heappushpop", "heapreplace"}:
                    return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            current = parent
        return False

    def _is_with_context(self, node: ast.AST) -> bool:
        parent = self._parent(node)
        return isinstance(parent, ast.withitem) and parent.context_expr is node

    def _check_heap_entry(self, entry: ast.AST) -> None:
        if not isinstance(entry, ast.Tuple) or len(entry.elts) < 2:
            return
        last = entry.elts[-1]
        if not isinstance(last, (ast.Name, ast.Attribute, ast.Call)):
            return
        last_name = _terminal_name(last) or ""
        if last_name.endswith(("_id", "_no", "id", "no")):
            return  # scalar identifiers are their own total order
        for element in entry.elts[:-1]:
            name = (_terminal_name(element) or "").lower()
            if any(fragment in name for fragment in _SEQ_FRAGMENTS):
                return
        self._flag(
            entry,
            "SIM003",
            "heap entry ends in an arbitrary object with no sequence "
            "number before it; ties on the leading keys fall back to "
            "object comparison",
        )

    # -- SIM001: resource request leak analysis -------------------------

    def _visit_function_def(self, node) -> None:
        self._check_request_leaks(node)
        self.generic_visit(node)

    visit_FunctionDef = _visit_function_def
    visit_AsyncFunctionDef = _visit_function_def

    def _check_request_leaks(self, func) -> None:
        """Flag ``yield <resource>.request()`` waits with no cancel path.

        Only generator functions are analysed: a plain function that
        returns the request event delegates responsibility to its
        caller.  Nested function bodies are excluded (they are analysed
        on their own).
        """
        own_nodes = self._function_nodes(func)
        has_yield = any(
            isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own_nodes
        )
        if not has_yield:
            return
        request_calls = [
            n
            for n in own_nodes
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "request"
            and not n.args
            and not n.keywords
        ]
        if not request_calls:
            return
        # Names bound to a request() result in this function.
        request_names: Set[str] = set()
        for n in own_nodes:
            if isinstance(n, ast.Assign) and n.value in request_calls:
                for target in n.targets:
                    if isinstance(target, ast.Name):
                        request_names.add(target.id)
        for n in own_nodes:
            if not isinstance(n, ast.Yield) or n.value is None:
                continue
            value = n.value
            is_request_wait = value in request_calls or (
                isinstance(value, ast.Name) and value.id in request_names
            )
            if is_request_wait and not self._wait_is_protected(n, func):
                self._flag(
                    n,
                    "SIM001",
                    "grant wait on request() has no cancel path: an "
                    "interrupt here leaks the queued unit (use "
                    "Resource.grab()/acquire(), or try/except cancel)",
                )

    def _function_nodes(self, func) -> List[ast.AST]:
        """All nodes of ``func`` excluding nested function bodies."""
        nodes: List[ast.AST] = []
        stack: List[ast.AST] = list(func.body)
        while stack:
            current = stack.pop()
            nodes.append(current)
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(current))
        return nodes

    def _wait_is_protected(self, yield_node: ast.AST, func) -> bool:
        """Is the yield inside a try whose handlers/finally clean up?"""
        current: Optional[ast.AST] = yield_node
        while current is not None and current is not func:
            parent = self._parent(current)
            if isinstance(parent, ast.Try) and self._in_block(
                parent.body, current
            ):
                if self._block_cleans_up(parent.finalbody):
                    return True
                for handler in parent.handlers:
                    if self._block_cleans_up(handler.body):
                        return True
            current = parent
        return False

    @staticmethod
    def _in_block(block: List[ast.stmt], node: ast.AST) -> bool:
        return any(node is stmt for stmt in block)

    @staticmethod
    def _block_cleans_up(block: List[ast.stmt]) -> bool:
        for stmt in block:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in {"cancel", "release"}
                ):
                    return True
        return False


def analyze_source(
    path: str, source: str, registry: Optional[Registry] = None
) -> Tuple[List[Finding], Optional[ast.AST]]:
    """Analyze one file's source; returns (findings, tree or None)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path,
                    exc.lineno or 0,
                    exc.offset or 0,
                    "SUP001",
                    f"file does not parse: {exc.msg}",
                )
            ],
            None,
        )
    if registry is None:
        registry = build_registry([tree])
    return FileAnalyzer(path, tree, registry).run(), tree
