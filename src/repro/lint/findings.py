"""Finding records and report rendering for ``simlint``."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List

__all__ = ["Finding", "render_text", "render_json", "JSON_SCHEMA_VERSION"]

#: Bumped whenever the JSON report layout changes incompatibly.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    The field order defines the report order: by file, then line, then
    column, then rule id -- a total order, so reports are byte-identical
    across runs regardless of analysis order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def render_text(findings: Iterable[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding."""
    return "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in sorted(findings)
    )


def render_json(findings: Iterable[Finding], files_scanned: int) -> str:
    """Machine-readable report for CI (stable key order, sorted findings)."""
    ordered: List[Finding] = sorted(findings)
    counts: Dict[str, int] = {}
    for finding in ordered:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    document: Dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in ordered
        ],
        "counts": dict(sorted(counts.items())),
    }
    return json.dumps(document, indent=2, sort_keys=False)
