"""RES rules: path-sensitive resource-obligation tracking.

The simulator's resource layer hands out *obligations*:

* ``entry = res.hold(d)`` / ``held_chain(...)`` / ``hold_seq(...)``
  return an entry that must either complete (``yield entry``) or be
  cancelled (``res.hold_cancel(entry)`` / ``held_chain_cancel`` /
  ``hold_seq_cancel``) -- otherwise the queued slice leaks when an
  interrupt tears the process off the wait.
* ``req = res.request()`` is the same until the yield succeeds -- and
  *then* the unit is held and must be given back with
  ``res.release()`` on **every** path out of the function.
* ``yield from res.grab()`` is the cancel-safe wait: once it returns,
  the unit is held and ``res.release()`` is owed on every path.

The analysis runs the dataflow framework over the function's CFG.
Facts are ``(status, kind, receiver, line, col)`` tuples per tracked
name (or per receiver expression for ``grab``); ``status`` moves
``pending -> done`` (entry completed/cancelled) or ``pending -> held
-> done`` (request/grab granted, then released).  The CFG's
``"except"`` edges model interrupts thrown at suspension points, so a
``yield entry`` guarded by ``try/except BaseException: cancel; raise``
is clean while an unguarded one reaches the raise exit still pending.

Escapes are conservative: an obligation returned, yielded as a value
inside a container, stored into an attribute, or passed to any
function other than a cancel drops out of the analysis (no alias
tracking -- see docs/LINTING.md).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.cfg import CFG, CFGNode, build_cfg
from repro.lint.dataflow import State, merge_states, run_dataflow
from repro.lint.findings import Finding

__all__ = ["ResAnalyzer"]

#: Acquisition helpers called as free functions.
_FREE_ACQUIRERS = {"held_chain": "held_chain", "hold_seq": "hold_seq"}
#: Cancel helpers called as free functions, one obligation argument.
_FREE_CANCELS = {"held_chain_cancel", "hold_seq_cancel"}
#: Cancel methods: ``recv.hold_cancel(entry)`` / ``recv.cancel(entry)``.
_METHOD_CANCELS = {"hold_cancel", "cancel"}

_PENDING = "pending"
_HELD = "held"
_DONE = "done"

Fact = Tuple[str, str, str, int, int]  # (status, kind, receiver, line, col)


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expr>"


def _effect_roots(stmt: ast.stmt) -> List[ast.AST]:
    """The parts of ``stmt`` whose effects happen *at this CFG node*.

    Compound statements (``try``/``if``/``while``/``with``/...) own
    only their header expression: their nested bodies are separate CFG
    nodes with their own transfers.  Walking the whole subtree here
    would apply, say, a ``finally:`` release at the ``try`` header --
    discharging the obligation before the body even runs.
    """
    if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return [stmt]


def _walk_roots(roots: List[ast.AST]):
    """Walk every root, skipping the bodies of nested defs/lambdas."""
    for root in roots:
        stack = [root]
        while stack:
            sub = stack.pop()
            if sub is not root and isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield sub
            stack.extend(reversed(list(ast.iter_child_nodes(sub))))


class ResAnalyzer:
    """Run the RES dataflow over every generator function of a module."""

    def __init__(self, path: str, tree: ast.AST):
        self.path = path
        self.tree = tree
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_generator(node):
                    _FunctionAnalysis(self.path, node, self.findings).run()
        self.findings.sort()
        return self.findings

    @staticmethod
    def _is_generator(func: ast.AST) -> bool:
        for sub in ast.walk(func):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                if sub is not func:
                    continue
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                owner = _owning_function(sub, func)
                if owner is func:
                    return True
        return False


def _owning_function(node: ast.AST, root: ast.AST) -> ast.AST:
    """The innermost function containing ``node`` (parent-map free).

    ``ast.walk`` has no parents, so ownership is recomputed by a scan:
    a yield belongs to ``root`` unless some nested def contains it.
    """
    for sub in ast.walk(root):
        if sub is root:
            continue
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for inner in ast.walk(sub):
                if inner is node:
                    return sub
    return root


class _FunctionAnalysis:
    def __init__(self, path: str, func: ast.AST, findings: List[Finding]):
        self.path = path
        self.func = func
        self.findings = findings
        #: name -> (kind, receiver src) for ``h = res.hold`` style aliases.
        self.method_aliases: Dict[str, Tuple[str, str]] = {}
        self._collect_aliases()
        self._reported: Set[Tuple[int, int, str]] = set()

    def run(self) -> None:
        cfg = build_cfg(self.func)
        in_states = run_dataflow(cfg, self._transfer)
        # Collection pass: re-apply transfers against the fixpoint to
        # surface RES003 (double release) and overwrite leaks, then
        # inspect the exit states for RES001/RES002.
        for node in cfg.nodes:
            if node.stmt is None or node.node_id not in in_states:
                continue
            self._transfer(node, in_states[node.node_id], collect=True)
        self._check_exit(in_states.get(cfg.exit.node_id), interrupted=False)
        self._check_exit(in_states.get(cfg.raise_exit.node_id), interrupted=True)

    # -- alias collection ----------------------------------------------

    def _collect_aliases(self) -> None:
        for stmt in ast.walk(self.func):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            value = stmt.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Attribute)
                and value.attr == "hold"
            ):
                self.method_aliases[target.id] = ("hold", _unparse(value.value))

    # -- fact plumbing --------------------------------------------------

    def _flag(self, line: int, col: int, rule: str, message: str) -> None:
        key = (line, col, rule)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(Finding(self.path, line, col, rule, message))

    def _check_exit(self, state: Optional[State], interrupted: bool) -> None:
        if not state:
            return
        how = "an interrupt/exception path" if interrupted else "a normal path"
        for facts in state.values():
            for status, kind, receiver, line, col in sorted(facts):
                if status == _PENDING:
                    self._flag(
                        line,
                        col,
                        "RES001",
                        f"{kind} obligation can escape the function on "
                        f"{how} while still pending: guard the wait with "
                        "try/except BaseException and cancel "
                        "(hold_cancel/held_chain_cancel/hold_seq_cancel/"
                        "cancel) before re-raising",
                    )
                elif status == _HELD:
                    self._flag(
                        line,
                        col,
                        "RES002",
                        f"{kind} of {receiver!r} is not released on "
                        f"{how}: every exit after the grant must call "
                        f"{receiver}.release() (use try/finally)",
                    )

    # -- the transfer function ------------------------------------------

    def _transfer(
        self, node: CFGNode, state: State, collect: bool = False
    ) -> Tuple[State, State]:
        stmt = node.stmt
        assert stmt is not None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state, state

        normal: Dict[str, FrozenSet[Fact]] = dict(state)
        # The except edge sees cancel/release effects (bookkeeping calls
        # are modelled as non-raising) but not yield completions or new
        # acquisitions.
        exceptional: Dict[str, FrozenSet[Fact]] = dict(state)

        roots = _effect_roots(stmt)
        for call in self._calls(roots):
            self._apply_cancel(call, normal, exceptional, collect)
        self._apply_escapes(roots, normal, exceptional)
        self._apply_yield_completion(roots, normal)
        self._apply_acquisition(stmt, normal, collect)
        return normal, exceptional

    def _calls(self, roots: List[ast.AST]) -> List[ast.Call]:
        return [sub for sub in _walk_roots(roots) if isinstance(sub, ast.Call)]

    def _apply_cancel(
        self,
        call: ast.Call,
        normal: Dict[str, FrozenSet[Fact]],
        exceptional: Dict[str, FrozenSet[Fact]],
        collect: bool,
    ) -> None:
        func = call.func
        # Cancel of a tracked obligation variable.
        cancelled_var: Optional[str] = None
        if (
            isinstance(func, ast.Name)
            and func.id in _FREE_CANCELS
            and len(call.args) == 1
            and isinstance(call.args[0], ast.Name)
        ):
            cancelled_var = call.args[0].id
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _METHOD_CANCELS
            and len(call.args) == 1
            and isinstance(call.args[0], ast.Name)
        ):
            cancelled_var = call.args[0].id
        if cancelled_var is not None:
            key = f"var:{cancelled_var}"
            facts = normal.get(key)
            if facts:
                if collect and all(f[0] == _DONE for f in facts):
                    self._flag(
                        call.lineno,
                        call.col_offset,
                        "RES003",
                        f"{cancelled_var!r} is already completed or "
                        "cancelled on every path reaching this cancel; "
                        "a second cancel corrupts the resource queue",
                    )
                done = frozenset((_DONE, k, r, ln, c) for _s, k, r, ln, c in facts)
                normal[key] = done
                exceptional[key] = done
            return
        # recv.release(): discharge held obligations of that receiver.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "release"
            and not call.args
            and not call.keywords
        ):
            receiver = _unparse(func.value)
            for key, facts in list(normal.items()):
                if not any(f[2] == receiver for f in facts):
                    continue
                if collect and facts and all(f[0] == _DONE for f in facts):
                    self._flag(
                        call.lineno,
                        call.col_offset,
                        "RES003",
                        f"{receiver}.release() is reached with the unit "
                        "already released on every path; a double release "
                        "grants a unit that was never acquired",
                    )
                done = frozenset((_DONE, k, r, ln, c) for _s, k, r, ln, c in facts)
                normal[key] = done
                exceptional[key] = done

    def _apply_yield_completion(
        self, roots: List[ast.AST], normal: Dict[str, FrozenSet[Fact]]
    ) -> None:
        for sub in _walk_roots(roots):
            if not isinstance(sub, ast.Yield) or not isinstance(sub.value, ast.Name):
                continue
            key = f"var:{sub.value.id}"
            facts = normal.get(key)
            if not facts:
                continue
            moved = set()
            for status, kind, receiver, line, col in facts:
                if status == _PENDING:
                    # A completed request() wait holds the unit; a
                    # completed hold/chain entry is fully discharged.
                    status = _HELD if kind == "request" else _DONE
                moved.add((status, kind, receiver, line, col))
            normal[key] = frozenset(moved)

    def _apply_escapes(
        self,
        roots: List[ast.AST],
        normal: Dict[str, FrozenSet[Fact]],
        exceptional: Dict[str, FrozenSet[Fact]],
    ) -> None:
        escaped: Set[str] = set()
        for sub in _walk_roots(roots):
            # Returned or delegated: the caller owns the obligation now.
            if isinstance(sub, (ast.Return, ast.YieldFrom)):
                value = sub.value
                if value is not None:
                    for name in ast.walk(value):
                        if isinstance(name, ast.Name):
                            escaped.add(name.id)
            # Stored into an attribute/subscript: outlives the frame.
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
                ):
                    for name in ast.walk(sub.value or ast.Pass()):
                        if isinstance(name, ast.Name):
                            escaped.add(name.id)
            # Passed to a non-cancel call: no alias tracking, drop it.
            if isinstance(sub, ast.Call):
                func_name = (
                    sub.func.attr
                    if isinstance(sub.func, ast.Attribute)
                    else sub.func.id
                    if isinstance(sub.func, ast.Name)
                    else None
                )
                if func_name in _FREE_CANCELS or func_name in _METHOD_CANCELS:
                    continue
                for arg in [*sub.args, *[k.value for k in sub.keywords]]:
                    for name in ast.walk(arg):
                        if isinstance(name, ast.Name):
                            escaped.add(name.id)
        for name in sorted(escaped):
            normal.pop(f"var:{name}", None)
            exceptional.pop(f"var:{name}", None)

    def _apply_acquisition(
        self, stmt: ast.stmt, normal: Dict[str, FrozenSet[Fact]], collect: bool
    ) -> None:
        # ``yield from recv.grab()``: the unit is held once this
        # statement completes normally.
        for sub in _walk_roots(_effect_roots(stmt)):
            if (
                isinstance(sub, ast.YieldFrom)
                and isinstance(sub.value, ast.Call)
                and isinstance(sub.value.func, ast.Attribute)
                and sub.value.func.attr == "grab"
                and not sub.value.args
            ):
                receiver = _unparse(sub.value.func.value)
                key = f"res:{receiver}"
                normal[key] = frozenset(
                    {(_HELD, "grab", receiver, sub.value.lineno, sub.value.col_offset)}
                )
        # ``name = <acquisition call>``
        value: Optional[ast.expr]
        targets: List[ast.expr]
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        else:
            return
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        acquired = self._acquisition_of(value)
        if acquired is None:
            return
        kind, receiver = acquired
        key = f"var:{targets[0].id}"
        old = normal.get(key)
        if collect and old and any(f[0] in (_PENDING, _HELD) for f in old):
            self._flag(
                value.lineno,
                value.col_offset,
                "RES001",
                f"{targets[0].id!r} is reassigned while a previous "
                f"{kind} obligation may still be pending; the old entry "
                "can no longer be cancelled",
            )
        normal[key] = frozenset(
            {(_PENDING, kind, receiver, value.lineno, value.col_offset)}
        )

    def _acquisition_of(self, value: ast.expr) -> Optional[Tuple[str, str]]:
        """(kind, receiver source) when ``value`` acquires an obligation."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name):
            if func.id in _FREE_ACQUIRERS:
                return _FREE_ACQUIRERS[func.id], func.id
            alias = self.method_aliases.get(func.id)
            if alias is not None:
                return alias
            return None
        if isinstance(func, ast.Attribute):
            receiver = _unparse(func.value)
            if func.attr == "hold" and value.args:
                return "hold", receiver
            if func.attr == "request" and not value.args and not value.keywords:
                return "request", receiver
        return None
