"""``simlint --fix``: mechanical autofixes for a safe subset of rules.

Two rules have fixes whose correctness is locally decidable:

* **DET001** (iteration over an unordered collection) -- wrap the
  iterable in ``sorted(...)``.  Applied to ``for`` loops (wrap the
  iterated expression), ``list()``/``tuple()`` materialisations (wrap
  the argument) and OS-ordered listings such as ``os.listdir``/``glob``
  (wrap the call).  The ``iter()``-over-a-set variant has no mechanical
  fix (the right repair is ``min()``/``max()`` with a key) and is left
  alone.
* **SUP001** (malformed simlint suppression) -- normalise recoverable
  spelling variants (``disable: RULE``, missing spaces, single-dash
  justification separator, lower-case rule ids) to the canonical
  ``# simlint: disable=RULE -- why`` form.  A suppression whose
  justification is genuinely missing cannot be invented and is left
  for a human.

Fixes are idempotent: running ``--fix`` twice produces the same text,
because a fixed site no longer matches its rule.
"""

from __future__ import annotations

import ast
import re
import tokenize
from io import StringIO
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import is_known_rule
from repro.lint.runner import collect_files, lint_sources

__all__ = ["fix_source", "fix_paths"]

#: Rules the autofixer knows how to repair.
FIXABLE_RULES = ("DET001", "SUP001")

#: Call names whose DET001 finding wraps the *argument*.
_WRAP_ARGUMENT = {"list", "tuple"}
#: Call names with no mechanical DET001 fix.
_NO_FIX = {"iter"}

#: Lenient recogniser for almost-right suppression comments.
_LENIENT = re.compile(
    r"#\s*simlint\s*[:,]?\s*(?P<form>disable(?:[-_]next)?)\s*[:=]\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)\s*(?:-{1,2}\s*(?P<why>.*\S))?\s*$"
)


def _splice(
    lines: List[str], start: Tuple[int, int], end: Tuple[int, int], prefix: str, suffix: str
) -> None:
    """Insert ``prefix``/``suffix`` around the [start, end) source span.

    Positions are ``(lineno, col)`` with 1-based lines.  The end is
    edited first so the start offsets stay valid.
    """
    end_line, end_col = end
    lines[end_line - 1] = (
        lines[end_line - 1][:end_col] + suffix + lines[end_line - 1][end_col:]
    )
    start_line, start_col = start
    lines[start_line - 1] = (
        lines[start_line - 1][:start_col] + prefix + lines[start_line - 1][start_col:]
    )


def _span(node: ast.AST) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    return (
        (node.lineno, node.col_offset),
        (node.end_lineno, node.end_col_offset),
    )


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _det001_edit(
    tree: ast.AST, finding: Finding
) -> Optional[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """The source span to wrap in ``sorted(...)`` for one DET001 finding."""
    for node in ast.walk(tree):
        if (
            getattr(node, "lineno", None) != finding.line
            or getattr(node, "col_offset", None) != finding.col
        ):
            continue
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return _span(node.iter)
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _NO_FIX:
                return None
            if name in _WRAP_ARGUMENT and node.args:
                return _span(node.args[0])
            # OS-ordered listing (os.listdir, glob, ...): wrap the call.
            return _span(node)
    return None


def _normalise_suppression(comment: str) -> Optional[str]:
    """Canonical form of an almost-right suppression, or None."""
    match = _LENIENT.search(comment)
    if match is None:
        return None
    form = match.group("form").replace("_", "-")
    why = match.group("why")
    if not why:
        return None  # a justification cannot be invented
    rules: List[str] = []
    for raw in match.group("rules").split(","):
        rule = raw.strip()
        if not rule:
            continue
        if not is_known_rule(rule):
            if is_known_rule(rule.upper()):
                rule = rule.upper()
            else:
                return None  # unknown rule: not mechanically fixable
        rules.append(rule)
    if not rules:
        return None
    normalised = f"# simlint: {form}={','.join(rules)} -- {why}"
    return None if normalised == comment else normalised


def _sup001_fixes(source: str) -> List[Tuple[int, str, str]]:
    """(line, old comment, new comment) replacements for one file."""
    fixes: List[Tuple[int, str, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT or "simlint" not in token.string:
            continue
        replacement = _normalise_suppression(token.string)
        if replacement is not None:
            fixes.append((token.start[0], token.string, replacement))
    return fixes


def fix_source(path: str, source: str) -> Tuple[str, int]:
    """Apply every available fix to one file's text.

    Returns ``(new_source, fixes_applied)``.  The function is a pure
    text transform -- the caller decides whether to write the result.
    """
    applied = 0
    # SUP001 first: comment edits never move AST node positions the
    # DET001 pass relies on (comments are not AST nodes), but doing
    # them on the original text keeps the token positions exact.
    lines = source.splitlines(keepends=True)
    for line, old, new in _sup001_fixes(source):
        text = lines[line - 1]
        if old in text:
            lines[line - 1] = text.replace(old, new, 1)
            applied += 1
    source = "".join(lines)

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, applied
    findings, _ = lint_sources([(path, source)], select=["DET001"])
    edits = []
    for finding in findings:
        span = _det001_edit(tree, finding)
        if span is not None:
            edits.append(span)
    # Apply bottom-up so earlier spans keep their offsets; spans never
    # nest (each is one statement's iterable).
    plain = source.splitlines(keepends=True)
    for start, end in sorted(edits, reverse=True):
        _splice(plain, start, end, "sorted(", ")")
        applied += 1
    return "".join(plain), applied


def fix_paths(paths: Sequence[str]) -> Dict[str, int]:
    """Fix every file under ``paths`` in place.

    Returns ``{path: fixes_applied}`` for the files that changed.
    """
    changed: Dict[str, int] = {}
    for file_path in collect_files(paths):
        source = file_path.read_text(encoding="utf-8")
        fixed, applied = fix_source(str(file_path), source)
        if applied and fixed != source:
            Path(file_path).write_text(fixed, encoding="utf-8")
            changed[str(file_path)] = applied
    return changed
