"""Intra-procedural control-flow graphs for the dataflow rules.

One :class:`CFG` is built per function.  Nodes are *statements* (plus
three synthetic nodes: entry, normal exit, exceptional exit); edges are
labelled ``"next"`` (normal control transfer) or ``"except"`` (the
statement raised, or -- for a ``yield`` suspension point -- the engine
threw an interrupt into the frame).

The graph is deliberately conservative:

* **Every** statement gets an ``"except"`` edge to its innermost
  exception target (handler dispatch, ``finally`` entry, or the
  synthetic raise exit).  In the simulator the interesting raise sites
  are yields (``Process.interrupt`` / crash kills arrive there) and
  calls, but a uniform rule keeps the graph predictable and the
  analysis sound.  The one exception is a ``try`` header, which runs
  no code: its body's statements raise into the handler dispatch, the
  header itself cannot raise at all.
* ``with`` blocks are transparent to exceptions: the context manager's
  ``__exit__`` is assumed not to suppress (true for every manager in
  this codebase; a suppressing manager would hide, not invent, leaks).
* A ``finally`` body is built once and shared by the normal and the
  exceptional entries; the dataflow consequently merges both incoming
  states (a may-analysis union -- conservative, never unsound).
* ``except SomeError`` handler lists without a catch-all (bare
  ``except`` or ``except BaseException``) keep an "unmatched" edge past
  the handlers, because an interrupt thrown at a yield need not match.

Only syntactic constructs are modelled; there is no alias analysis and
no interprocedural propagation (see docs/LINTING.md for the limits).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg", "EDGE_NEXT", "EDGE_EXCEPT"]

EDGE_NEXT = "next"
EDGE_EXCEPT = "except"

#: Exception names that catch an engine interrupt thrown at a yield.
_CATCH_ALL_NAMES = {"BaseException"}


class CFGNode:
    """One statement (or synthetic marker) in the graph."""

    __slots__ = ("node_id", "stmt", "label")

    def __init__(self, node_id: int, stmt: Optional[ast.stmt], label: str):
        self.node_id = node_id
        self.stmt = stmt
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CFGNode({self.node_id}, {self.label!r})"


class CFG:
    """Statement-level control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.edges: Dict[int, List[Tuple[int, str]]] = {}
        self.entry = self._new_node(None, "<entry>")
        self.exit = self._new_node(None, "<exit>")
        self.raise_exit = self._new_node(None, "<raise>")

    def _new_node(self, stmt: Optional[ast.stmt], label: str) -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, label)
        self.nodes.append(node)
        self.edges[node.node_id] = []
        return node

    def add_edge(self, src: int, dst: int, kind: str) -> None:
        pair = (dst, kind)
        if pair not in self.edges[src]:
            self.edges[src].append(pair)

    def successors(self, node: CFGNode) -> List[Tuple[CFGNode, str]]:
        return [(self.nodes[dst], kind) for dst, kind in self.edges[node.node_id]]

    def edge_set(self) -> Set[Tuple[str, str, str]]:
        """``(src_label, dst_label, kind)`` triples, for fixture tests."""
        out: Set[Tuple[str, str, str]] = set()
        for src_id, succs in self.edges.items():
            src = self.nodes[src_id].label
            for dst_id, kind in succs:
                out.add((src, self.nodes[dst_id].label, kind))
        return out


def _label(stmt: ast.stmt) -> str:
    return f"{stmt.lineno}:{type(stmt).__name__}"


@dataclass
class _FinallyFrame:
    """One enclosing ``finally`` body awaiting its exit continuations."""

    entry: int
    lasts: Tuple[int, ...]
    #: The exception continuation outside the owning try statement
    #: (finally-exit edges to it are tagged ``"except"``).
    outer_exc: int
    targets: Set[int] = field(default_factory=set)


@dataclass
class _Ctx:
    """Where control escapes to from the statements being built."""

    exc: int
    break_target: Optional["_Deferred"] = None
    continue_target: Optional[int] = None
    #: Enclosing finally frames, innermost last.
    frames: Tuple[_FinallyFrame, ...] = ()
    #: ``len(frames)`` when the innermost enclosing loop was entered:
    #: break/continue only route through frames deeper than this.
    loop_frame_depth: int = 0


class _Deferred:
    """A forward-edge target resolved after the construct is built."""

    def __init__(self) -> None:
        #: Nodes that jump straight to the deferred target.
        self.sources: List[int] = []
        #: Finally frames whose exit must continue at the target
        #: (a break/continue that crossed a try/finally).
        self.frames: List[_FinallyFrame] = []

    def add(self, src: int) -> None:
        self.sources.append(src)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        #: Every finally frame built; exit edges are wired at the end,
        #: once all routed continuations (returns, breaks) are known.
        self._all_frames: List[_FinallyFrame] = []

    def build(self, func: ast.AST, body: Sequence[ast.stmt]) -> CFG:
        ctx = _Ctx(exc=self.cfg.raise_exit.node_id)
        first, lasts = self._build_block(body, ctx)
        if first is None:
            self.cfg.add_edge(self.cfg.entry.node_id, self.cfg.exit.node_id, EDGE_NEXT)
        else:
            self.cfg.add_edge(self.cfg.entry.node_id, first, EDGE_NEXT)
        for last in lasts:
            self.cfg.add_edge(last, self.cfg.exit.node_id, EDGE_NEXT)
        for frame in self._all_frames:
            for last in frame.lasts:
                for target in sorted(frame.targets):
                    kind = EDGE_EXCEPT if target == frame.outer_exc else EDGE_NEXT
                    self.cfg.add_edge(last, target, kind)
        return self.cfg

    # -- block plumbing -------------------------------------------------

    def _build_block(
        self, body: Sequence[ast.stmt], ctx: _Ctx
    ) -> Tuple[Optional[int], List[int]]:
        """Build a statement list; returns (first node id, fallthrough ids)."""
        first: Optional[int] = None
        lasts: List[int] = []
        for stmt in body:
            s_first, s_lasts = self._build_stmt(stmt, ctx)
            if first is None:
                first = s_first
            for last in lasts:
                self.cfg.add_edge(last, s_first, EDGE_NEXT)
            lasts = s_lasts
        return first, lasts

    def _route_through_finallys(
        self, src: int, frames: Sequence[_FinallyFrame], final_target: Optional[int]
    ) -> None:
        """Wire ``src`` through ``frames`` (innermost first) to a target.

        ``final_target`` of None means the function's normal exit.
        """
        if final_target is None:
            final_target = self.cfg.exit.node_id
        chain = list(frames)[::-1]  # innermost first
        if not chain:
            self.cfg.add_edge(src, final_target, EDGE_NEXT)
            return
        self.cfg.add_edge(src, chain[0].entry, EDGE_NEXT)
        for frame, nxt in zip(chain, chain[1:]):
            frame.targets.add(nxt.entry)
        chain[-1].targets.add(final_target)

    # -- statement dispatch ---------------------------------------------

    def _build_stmt(self, stmt: ast.stmt, ctx: _Ctx) -> Tuple[int, List[int]]:
        node = self.cfg._new_node(stmt, _label(stmt))
        nid = node.node_id
        # Uniform conservative rule: any statement may raise (and every
        # yield inside one is a suspension point an interrupt can be
        # thrown into).  Entering a ``try`` runs no code at all, so the
        # header gets no except edge -- one here would carry pre-body
        # state past the handlers straight to the outer target.
        if not isinstance(stmt, ast.Try):
            self.cfg.add_edge(nid, ctx.exc, EDGE_EXCEPT)

        if isinstance(stmt, (ast.If,)):
            return nid, self._build_branch(nid, [stmt.body, stmt.orelse], ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return nid, self._build_loop(nid, stmt, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            b_first, b_lasts = self._build_block(stmt.body, ctx)
            if b_first is None:
                return nid, [nid]
            self.cfg.add_edge(nid, b_first, EDGE_NEXT)
            return nid, b_lasts
        if isinstance(stmt, ast.Try):
            return nid, self._build_try(nid, stmt, ctx)
        if isinstance(stmt, ast.Match):
            branches = [case.body for case in stmt.cases]
            lasts = self._build_branch(nid, branches, ctx, force_fallthrough=True)
            return nid, lasts
        if isinstance(stmt, ast.Raise):
            # No normal successor; the uniform except edge carries it.
            return nid, []
        if isinstance(stmt, ast.Return):
            self._route_through_finallys(nid, ctx.frames, None)
            return nid, []
        if isinstance(stmt, ast.Break):
            assert ctx.break_target is not None
            frames = ctx.frames[ctx.loop_frame_depth:]
            if frames:
                # Through the finallys, then (deferred) past the loop.
                chain = list(frames)[::-1]
                self.cfg.add_edge(nid, chain[0].entry, EDGE_NEXT)
                for frame, nxt in zip(chain, chain[1:]):
                    frame.targets.add(nxt.entry)
                ctx.break_target.frames.append(chain[-1])
            else:
                ctx.break_target.add(nid)
            return nid, []
        if isinstance(stmt, ast.Continue):
            assert ctx.continue_target is not None
            frames = ctx.frames[ctx.loop_frame_depth:]
            if frames:
                self._route_through_finallys(nid, frames, ctx.continue_target)
            else:
                self.cfg.add_edge(nid, ctx.continue_target, EDGE_NEXT)
            return nid, []
        # Simple statement: falls through.
        return nid, [nid]

    def _build_branch(
        self,
        header: int,
        branches: Sequence[Sequence[ast.stmt]],
        ctx: _Ctx,
        force_fallthrough: bool = False,
    ) -> List[int]:
        """If/match-style branching from ``header``; returns fallthroughs."""
        lasts: List[int] = []
        saw_empty = force_fallthrough
        for body in branches:
            if not body:
                saw_empty = True
                continue
            b_first, b_lasts = self._build_block(body, ctx)
            self.cfg.add_edge(header, b_first, EDGE_NEXT)
            lasts.extend(b_lasts)
        if saw_empty:
            lasts.append(header)
        return lasts

    def _build_loop(
        self, header: int, stmt: ast.stmt, ctx: _Ctx
    ) -> List[int]:
        breaks = _Deferred()
        loop_ctx = replace(
            ctx,
            break_target=breaks,
            continue_target=header,
            loop_frame_depth=len(ctx.frames),
        )
        body = stmt.body  # type: ignore[attr-defined]
        orelse = stmt.orelse  # type: ignore[attr-defined]
        b_first, b_lasts = self._build_block(body, loop_ctx)
        if b_first is not None:
            self.cfg.add_edge(header, b_first, EDGE_NEXT)
            for last in b_lasts:
                self.cfg.add_edge(last, header, EDGE_NEXT)
        lasts: List[int] = []
        # Condition-false / iterator-exhausted path: else body, then out.
        if orelse:
            e_first, e_lasts = self._build_block(orelse, ctx)
            self.cfg.add_edge(header, e_first, EDGE_NEXT)
            lasts.extend(e_lasts)
        else:
            lasts.append(header)
        # break skips the else clause entirely.
        lasts.extend(breaks.sources)
        for frame in breaks.frames:
            # A break routed through a finally: the finally's exit must
            # continue after the loop.  Emit a join node so the deferred
            # target exists now.
            join = self.cfg._new_node(None, f"<break-join:{header}>")
            frame.targets.add(join.node_id)
            lasts.append(join.node_id)
        return lasts

    def _build_try(self, header: int, stmt: ast.Try, ctx: _Ctx) -> List[int]:
        outer_exc = ctx.exc
        frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            f_first, f_lasts = self._build_block(stmt.finalbody, ctx)
            if f_first is None:  # pragma: no cover - empty finally is a SyntaxError
                f_first = header
                f_lasts = [header]
            frame = _FinallyFrame(
                entry=f_first, lasts=tuple(f_lasts), outer_exc=outer_exc
            )
            # An exception that reaches the finally re-raises afterwards.
            frame.targets.add(outer_exc)
            self._all_frames.append(frame)

        # Exceptions inside handler/else bodies skip this try's handlers.
        after_ctx = ctx if frame is None else replace(
            ctx, exc=frame.entry, frames=ctx.frames + (frame,)
        )

        # Handler bodies.
        handler_entries: List[int] = []
        handler_lasts: List[int] = []
        catch_all = False
        for handler in stmt.handlers:
            if handler.type is None:
                catch_all = True
            else:
                names = [
                    n.id
                    for n in ast.walk(handler.type)
                    if isinstance(n, ast.Name)
                ]
                if any(name in _CATCH_ALL_NAMES for name in names):
                    catch_all = True
            h_first, h_lasts = self._build_block(handler.body, after_ctx)
            if h_first is None:
                continue
            handler_entries.append(h_first)
            handler_lasts.extend(h_lasts)

        # Body: exceptions dispatch to every handler, and -- unless a
        # catch-all is present -- escape past them too.
        dispatch = self.cfg._new_node(None, f"<except-dispatch:{stmt.lineno}>")
        for entry in handler_entries:
            self.cfg.add_edge(dispatch.node_id, entry, EDGE_NEXT)
        if not catch_all or not handler_entries:
            unmatched = frame.entry if frame is not None else outer_exc
            self.cfg.add_edge(dispatch.node_id, unmatched, EDGE_EXCEPT)
        body_ctx = replace(
            after_ctx,
            exc=dispatch.node_id,
        )
        b_first, b_lasts = self._build_block(stmt.body, body_ctx)
        if b_first is not None:
            self.cfg.add_edge(header, b_first, EDGE_NEXT)
        else:
            b_lasts = [header]

        # else body runs after normal body completion.
        if stmt.orelse:
            e_first, e_lasts = self._build_block(stmt.orelse, after_ctx)
            if e_first is not None:
                for last in b_lasts:
                    self.cfg.add_edge(last, e_first, EDGE_NEXT)
                b_lasts = e_lasts

        lasts = b_lasts + handler_lasts
        if frame is None:
            return lasts
        # Normal completion funnels through the finally body.
        for last in lasts:
            self.cfg.add_edge(last, frame.entry, EDGE_NEXT)
        # The finally's exits continue to: the statement after the try
        # (represented by a join node), plus every routed target
        # (re-raise, return, break/continue continuations) -- wired at
        # the end of build(), once all routes are known.
        join = self.cfg._new_node(None, f"<finally-join:{stmt.lineno}>")
        frame.targets.add(join.node_id)
        return [join.node_id]


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one function (or module) body."""
    body = getattr(func, "body", None)
    if body is None:  # pragma: no cover - misuse guard
        raise TypeError(f"node has no body: {func!r}")
    return _Builder().build(func, body)
