"""Suppression comments: ``# simlint: disable=RULE[,RULE...] -- why``.

Two forms are recognised:

* trailing, on the offending line::

      for n in working_set:  # simlint: disable=DET001 -- drained into a set

* standalone, applying to the next non-comment line::

      # simlint: disable-next=DET002 -- host wall-clock, not simulated time
      started = time.time()

A justification after `` -- `` is mandatory; a suppression without one
(or naming an unknown rule) is malformed: it suppresses nothing and is
itself reported as SUP001.
"""

from __future__ import annotations

import re
import tokenize
from io import StringIO
from typing import Dict, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import is_known_rule

__all__ = ["SuppressionTable", "parse_suppressions"]

_PATTERN = re.compile(
    r"#\s*simlint:\s*(?P<form>disable(?:-next)?)\s*=\s*(?P<rules>[A-Za-z0-9, ]+?)"
    r"\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


class SuppressionTable:
    """Suppressed rule ids per physical line of one file."""

    def __init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        #: Findings about the suppression comments themselves.
        self.errors: List[Finding] = []

    def add(self, line: int, rule_ids: Set[str]) -> None:
        self._by_line.setdefault(line, set()).update(rule_ids)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        return rule_id in self._by_line.get(line, ())


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """(line, comment text) pairs, via tokenize so strings never match."""
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse will report the syntax problem; no suppressions.
        return []
    return comments


def parse_suppressions(source: str, path: str) -> SuppressionTable:
    """Build the suppression table for one file's source text."""
    table = SuppressionTable()
    for line, comment in _comment_tokens(source):
        if "simlint" not in comment:
            continue
        match = _PATTERN.search(comment)
        if match is None:
            table.errors.append(
                Finding(
                    path,
                    line,
                    0,
                    "SUP001",
                    "unparseable simlint comment (expected "
                    "'# simlint: disable=RULE -- justification')",
                )
            )
            continue
        rule_ids = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        unknown = sorted(r for r in rule_ids if not is_known_rule(r))
        why = match.group("why")
        if unknown:
            table.errors.append(
                Finding(
                    path,
                    line,
                    0,
                    "SUP001",
                    f"suppression names unknown rule(s): {', '.join(unknown)}",
                )
            )
            continue
        if not why:
            table.errors.append(
                Finding(
                    path,
                    line,
                    0,
                    "SUP001",
                    "suppression lacks a justification ('-- why' is required)",
                )
            )
            continue
        target = line + 1 if match.group("form") == "disable-next" else line
        table.add(target, rule_ids)
    return table
