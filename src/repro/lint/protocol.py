"""MSG rules: cross-file conformance of the message/handler surface.

The wire formats are *declared* in ``repro.cc.messages``: the
``WIRE_FORMATS`` mapping names every message kind, the TypedDict shape
of its payload, and the protocol classes expected to register a
handler for it (reply-event-only kinds declare no receivers).  This
module reads that declaration -- and the TypedDict field lists --
straight from the scanned ASTs, then checks every use site:

* **MSG001** -- a ``send``/``register_handler`` call names a kind that
  is not declared in ``WIRE_FORMATS`` (at simulation time this is a
  ``RuntimeError`` in the dispatcher, or a silently dropped message).
* **MSG002** -- a ``send`` payload literal does not match the kind's
  TypedDict field-by-field (missing required key, unknown key, or the
  annotated payload type is not the declared one).
* **MSG003** -- handler coverage drift: a class declared as a receiver
  of a kind never registers a handler for it, or a class registers a
  handler for a kind that does not declare it as a receiver.

All checks are skipped when no ``WIRE_FORMATS`` declaration is among
the scanned files (linting a partial tree or a fixture directory that
does not model the protocol layer).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding

__all__ = [
    "WireRegistry",
    "collect_wire_registry",
    "msg_findings_for_file",
    "msg_cross_file_findings",
]


@dataclass(frozen=True)
class WireSpec:
    """One declared message kind."""

    payload: str
    handled_by: Tuple[str, ...]
    path: str
    line: int


@dataclass(frozen=True)
class TypedDictInfo:
    """Field lists of one TypedDict payload declaration."""

    required: Tuple[str, ...]
    optional: Tuple[str, ...]

    def all_fields(self) -> Set[str]:
        return set(self.required) | set(self.optional)


@dataclass
class WireRegistry:
    """Everything the MSG rules know about the protocol surface."""

    kinds: Dict[str, WireSpec] = field(default_factory=dict)
    payload_types: Dict[str, TypedDictInfo] = field(default_factory=dict)
    #: class name -> {kind: line of its register_handler call}.
    handlers: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: class name -> (path, line) of the class definition.
    class_sites: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        return bool(self.kinds)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# --------------------------------------------------------------------------
# Registry collection (pass A)
# --------------------------------------------------------------------------


def _collect_typed_dict(node: ast.ClassDef, registry: WireRegistry) -> None:
    if not any(_terminal_name(base) == "TypedDict" for base in node.bases):
        return
    total = True
    for kw in node.keywords:
        if kw.arg == "total" and isinstance(kw.value, ast.Constant):
            total = bool(kw.value.value)
    required: List[str] = []
    optional: List[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        name = stmt.target.id
        wrapper = _terminal_name(
            stmt.annotation.value
            if isinstance(stmt.annotation, ast.Subscript)
            else stmt.annotation
        )
        if wrapper == "NotRequired" or (total is False and wrapper != "Required"):
            optional.append(name)
        else:
            required.append(name)
    registry.payload_types[node.name] = TypedDictInfo(
        tuple(required), tuple(optional)
    )


def _collect_wire_formats(path: str, stmt: ast.stmt, registry: WireRegistry) -> None:
    if isinstance(stmt, ast.AnnAssign):
        target: Optional[ast.expr] = stmt.target
        value = stmt.value
    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        value = stmt.value
    else:
        return
    if (
        not isinstance(target, ast.Name)
        or target.id != "WIRE_FORMATS"
        or not isinstance(value, ast.Dict)
    ):
        return
    for key_node, value_node in zip(value.keys, value.values):
        kind = _const_str(key_node) if key_node is not None else None
        if kind is None or not isinstance(value_node, ast.Call):
            continue
        payload: Optional[str] = None
        handled: Tuple[str, ...] = ()
        args = list(value_node.args)
        if args:
            payload = _terminal_name(args[0])
        if len(args) >= 2 and isinstance(args[1], (ast.Tuple, ast.List)):
            handled = tuple(
                s for s in (_const_str(e) for e in args[1].elts) if s is not None
            )
        for kw in value_node.keywords:
            if kw.arg == "payload":
                payload = _terminal_name(kw.value)
            elif kw.arg == "handled_by" and isinstance(
                kw.value, (ast.Tuple, ast.List)
            ):
                handled = tuple(
                    s
                    for s in (_const_str(e) for e in kw.value.elts)
                    if s is not None
                )
        if payload is not None:
            registry.kinds[kind] = WireSpec(
                payload, handled, path, key_node.lineno
            )


def _collect_class(path: str, node: ast.ClassDef, registry: WireRegistry) -> None:
    registry.class_sites.setdefault(node.name, (path, node.lineno))
    kinds = registry.handlers.setdefault(node.name, {})
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "register_handler"
            and sub.args
        ):
            kind = _const_str(sub.args[0])
            if kind is not None and kind not in kinds:
                kinds[kind] = sub.lineno


def collect_wire_registry(
    parsed: Sequence[Tuple[str, Optional[ast.AST]]],
) -> WireRegistry:
    """Extract the wire-format declaration from the scanned trees."""
    registry = WireRegistry()
    for path, tree in parsed:
        if tree is None:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                _collect_typed_dict(node, registry)
                _collect_class(path, node, registry)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                _collect_wire_formats(path, node, registry)
    return registry


# --------------------------------------------------------------------------
# Per-file checks (pass B)
# --------------------------------------------------------------------------


def _is_comm_send(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "send"):
        return False
    recv = func.value
    if isinstance(recv, ast.Attribute) and recv.attr == "comm":
        return True
    if isinstance(recv, ast.Name) and recv.id == "comm":
        return True
    return False


def _function_ann_payloads(func: ast.AST) -> Dict[str, Tuple[str, ast.Dict]]:
    """``name -> (annotated type, dict literal)`` for payload locals."""
    out: Dict[str, Tuple[str, ast.Dict]] = {}
    for sub in ast.walk(func):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not func:
            continue
        if (
            isinstance(sub, ast.AnnAssign)
            and isinstance(sub.target, ast.Name)
            and isinstance(sub.value, ast.Dict)
        ):
            type_name = _terminal_name(sub.annotation)
            if type_name is not None:
                out[sub.target.id] = (type_name, sub.value)
    return out


def _dict_literal_keys(node: ast.Dict) -> Optional[Set[str]]:
    keys: Set[str] = set()
    for key in node.keys:
        if key is None:  # **spread: shape unknowable statically
            return None
        value = _const_str(key)
        if value is None:
            return None
        keys.add(value)
    return keys


def _check_payload_fields(
    path: str,
    kind: str,
    spec: WireSpec,
    registry: WireRegistry,
    dict_node: ast.Dict,
    findings: List[Finding],
) -> None:
    info = registry.payload_types.get(spec.payload)
    if info is None:
        return
    keys = _dict_literal_keys(dict_node)
    if keys is None:
        return
    missing = sorted(set(info.required) - keys)
    unknown = sorted(keys - info.all_fields())
    if missing:
        findings.append(
            Finding(
                path,
                dict_node.lineno,
                dict_node.col_offset,
                "MSG002",
                f"payload for {kind!r} is missing required "
                f"{spec.payload} field(s): {', '.join(missing)}",
            )
        )
    if unknown:
        findings.append(
            Finding(
                path,
                dict_node.lineno,
                dict_node.col_offset,
                "MSG002",
                f"payload for {kind!r} has field(s) not declared on "
                f"{spec.payload}: {', '.join(unknown)}",
            )
        )


def _check_send(
    path: str,
    call: ast.Call,
    registry: WireRegistry,
    ann_payloads: Dict[str, Tuple[str, ast.Dict]],
    findings: List[Finding],
) -> None:
    if len(call.args) < 3:
        return
    kind = _const_str(call.args[1])
    if kind is None:
        return
    spec = registry.kinds.get(kind)
    if spec is None:
        findings.append(
            Finding(
                path,
                call.lineno,
                call.col_offset,
                "MSG001",
                f"send of undeclared message kind {kind!r}; declare it in "
                "WIRE_FORMATS (repro.cc.messages) with its payload shape",
            )
        )
        return
    payload = call.args[2]
    if isinstance(payload, ast.Dict):
        _check_payload_fields(path, kind, spec, registry, payload, findings)
    elif isinstance(payload, ast.Name):
        annotated = ann_payloads.get(payload.id)
        if annotated is None:
            return
        type_name, dict_node = annotated
        if type_name != spec.payload:
            findings.append(
                Finding(
                    path,
                    call.lineno,
                    call.col_offset,
                    "MSG002",
                    f"payload for {kind!r} is annotated as {type_name} but "
                    f"WIRE_FORMATS declares {spec.payload}",
                )
            )
            return
        _check_payload_fields(path, kind, spec, registry, dict_node, findings)


def _enclosing_class_name(
    node: ast.AST, class_stack: Dict[ast.AST, str]
) -> Optional[str]:
    return class_stack.get(node)


def msg_findings_for_file(
    path: str, tree: ast.AST, registry: WireRegistry
) -> List[Finding]:
    """MSG001/MSG002 at send sites, MSG001/MSG003 at registration sites."""
    if not registry.enabled:
        return []
    findings: List[Finding] = []
    #: call node -> enclosing class name (for registration drift).
    #: AST nodes hash by identity, so they key these maps directly.
    owner: Dict[ast.AST, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    owner.setdefault(sub, node.name)
    #: send sites are checked with their function's annotated payloads.
    seen: Set[ast.AST] = set()
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        ann_payloads = _function_ann_payloads(func)
        for sub in ast.walk(func):
            if isinstance(sub, ast.Call) and _is_comm_send(sub):
                if sub in seen:
                    continue
                seen.add(sub)
                _check_send(path, sub, registry, ann_payloads, findings)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _is_comm_send(node):
            if node not in seen:  # module-level send (fixtures)
                _check_send(path, node, registry, {}, findings)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "register_handler"
            and node.args
        ):
            kind = _const_str(node.args[0])
            if kind is None:
                continue
            spec = registry.kinds.get(kind)
            if spec is None:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        node.col_offset,
                        "MSG001",
                        f"handler registered for undeclared message kind "
                        f"{kind!r}; declare it in WIRE_FORMATS "
                        "(repro.cc.messages)",
                    )
                )
                continue
            cls = _enclosing_class_name(node, owner)
            if cls is not None and cls not in spec.handled_by:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        node.col_offset,
                        "MSG003",
                        f"{cls} registers a handler for {kind!r} but "
                        f"WIRE_FORMATS does not declare it a receiver "
                        f"(declared: {', '.join(spec.handled_by) or 'none'})",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# Cross-file coverage (after pass B)
# --------------------------------------------------------------------------


def msg_cross_file_findings(registry: WireRegistry) -> List[Finding]:
    """MSG003: every declared receiver class registers every kind."""
    if not registry.enabled:
        return []
    findings: List[Finding] = []
    for kind in sorted(registry.kinds):
        spec = registry.kinds[kind]
        for cls in spec.handled_by:
            site = registry.class_sites.get(cls)
            if site is None:
                # Partial scan: the class is outside the linted tree.
                continue
            if kind not in registry.handlers.get(cls, {}):
                path, line = site
                findings.append(
                    Finding(
                        path,
                        line,
                        0,
                        "MSG003",
                        f"{cls} is declared a receiver of {kind!r} in "
                        "WIRE_FORMATS but never calls "
                        f"register_handler({kind!r}, ...): the message "
                        "would raise in the dispatcher at simulation time",
                    )
                )
    return findings
