"""A small forward-dataflow framework over :mod:`repro.lint.cfg` graphs.

The framework is a classic worklist fixpoint: a *transfer function*
maps a statement's input state to an output state per outgoing edge
kind (``"next"`` gets the post-statement state, ``"except"`` gets the
state as it was when the statement raised), and states from multiple
predecessors are *merged* (a may-analysis union here -- facts are sets
of possibilities, so merging can only add possibilities, never drop
one).

States are immutable mappings ``key -> frozenset(facts)``; a missing
key means "nothing tracked".  The lattice is finite (keys and facts
are drawn from the statements of one function), so the fixpoint
terminates; the deterministic worklist order makes the analysis -- and
therefore the findings -- byte-identical across runs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Mapping, Tuple

from repro.lint.cfg import CFG, CFGNode, EDGE_NEXT

__all__ = ["State", "Transfer", "merge_states", "run_dataflow"]

#: One dataflow state: tracked key -> set of facts about it.
State = Mapping[str, FrozenSet[Tuple[object, ...]]]

#: Statement transfer: state before -> (state on "next", state on "except").
Transfer = Callable[[CFGNode, State], Tuple[State, State]]

EMPTY_STATE: State = {}


def merge_states(a: State, b: State) -> State:
    """Pointwise union of two states."""
    if not a:
        return b
    if not b:
        return a
    merged: Dict[str, FrozenSet[Tuple[object, ...]]] = dict(a)
    for key, facts in b.items():
        have = merged.get(key)
        merged[key] = facts if have is None else have | facts
    return merged


def run_dataflow(
    cfg: CFG, transfer: Transfer, entry_state: State = EMPTY_STATE
) -> Dict[int, State]:
    """Fixpoint input states per CFG node id.

    The returned mapping gives, for every reachable node, the merged
    state *before* the node's statement executes.  Synthetic nodes
    (entry/exit/joins) pass state through unchanged on every edge;
    the transfer function is only consulted for statement nodes.
    """
    in_states: Dict[int, State] = {cfg.entry.node_id: entry_state}
    worklist = deque([cfg.entry.node_id])
    queued = {cfg.entry.node_id}
    while worklist:
        node_id = worklist.popleft()
        queued.discard(node_id)
        node = cfg.nodes[node_id]
        state = in_states[node_id]
        if node.stmt is None:
            normal = exceptional = state
        else:
            normal, exceptional = transfer(node, state)
        for succ, kind in cfg.successors(node):
            out = normal if kind == EDGE_NEXT else exceptional
            have = in_states.get(succ.node_id)
            merged = out if have is None else merge_states(have, out)
            if have is None or merged != have:
                in_states[succ.node_id] = merged
                if succ.node_id not in queued:
                    queued.add(succ.node_id)
                    worklist.append(succ.node_id)
    return in_states
