"""simlint: determinism & protocol-safety static analysis.

The repository's headline guarantee -- byte-identical results across
seeds, job counts and fresh interpreters -- is enforced dynamically by
golden snapshots and cross-process determinism tests.  ``simlint``
moves that verification left: an AST pass that catches the hazard
classes *before* a golden diff fires.  See docs/LINTING.md for the rule
catalog and the suppression policy.

Programmatic use::

    from repro.lint import lint_paths
    findings, files = lint_paths(["src/repro"])
"""

from repro.lint.analyzer import FileAnalyzer, Registry, analyze_source, build_registry
from repro.lint.findings import JSON_SCHEMA_VERSION, Finding, render_json, render_text
from repro.lint.rules import RULES, Rule, is_known_rule
from repro.lint.runner import collect_files, lint_paths, lint_sources

__all__ = [
    "FileAnalyzer",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "Registry",
    "RULES",
    "Rule",
    "analyze_source",
    "build_registry",
    "collect_files",
    "is_known_rule",
    "lint_paths",
    "lint_sources",
    "render_json",
    "render_text",
]
