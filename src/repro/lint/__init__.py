"""simlint: determinism & protocol-safety static analysis.

The repository's headline guarantee -- byte-identical results across
seeds, job counts and fresh interpreters -- is enforced dynamically by
golden snapshots and cross-process determinism tests.  ``simlint``
moves that verification left: an AST pass that catches the hazard
classes *before* a golden diff fires.  See docs/LINTING.md for the rule
catalog and the suppression policy.

Programmatic use::

    from repro.lint import lint_paths
    findings, files = lint_paths(["src/repro"])
"""

from repro.lint.analyzer import FileAnalyzer, Registry, analyze_source, build_registry
from repro.lint.autofix import FIXABLE_RULES, fix_paths, fix_source
from repro.lint.baseline import BASELINE_SCHEMA_VERSION, Baseline
from repro.lint.cfg import CFG, CFGNode, build_cfg
from repro.lint.dataflow import merge_states, run_dataflow
from repro.lint.findings import JSON_SCHEMA_VERSION, Finding, render_json, render_text
from repro.lint.protocol import collect_wire_registry, msg_findings_for_file
from repro.lint.res import ResAnalyzer
from repro.lint.rngrules import RngAnalyzer
from repro.lint.rules import RULES, Rule, is_known_rule
from repro.lint.runner import collect_files, lint_paths, lint_sources

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "Baseline",
    "CFG",
    "CFGNode",
    "FIXABLE_RULES",
    "FileAnalyzer",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "Registry",
    "RULES",
    "ResAnalyzer",
    "RngAnalyzer",
    "Rule",
    "analyze_source",
    "build_cfg",
    "build_registry",
    "collect_files",
    "collect_wire_registry",
    "fix_paths",
    "fix_source",
    "is_known_rule",
    "lint_paths",
    "lint_sources",
    "merge_states",
    "msg_findings_for_file",
    "render_json",
    "render_text",
    "run_dataflow",
]
