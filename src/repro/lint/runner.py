"""File collection and the two-pass lint driver."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.analyzer import FileAnalyzer, build_registry
from repro.lint.findings import Finding
from repro.lint.protocol import (
    collect_wire_registry,
    msg_cross_file_findings,
    msg_findings_for_file,
)
from repro.lint.res import ResAnalyzer
from repro.lint.rngrules import RngAnalyzer
from repro.lint.suppressions import parse_suppressions

__all__ = ["collect_files", "lint_paths", "lint_sources"]


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Python files under ``paths``, in deterministic (sorted) order."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")
    seen = set()
    unique: List[Path] = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_sources(
    sources: Iterable[Tuple[str, str]],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Lint ``(path, source)`` pairs; returns (findings, files scanned).

    Pass A parses everything and builds the cross-file set registry;
    pass B analyses each file against it.  Suppression comments filter
    findings per line; malformed suppressions surface as SUP001.
    """
    parsed: List[Tuple[str, str, Optional[ast.AST]]] = []
    findings: List[Finding] = []
    for path, source in sources:
        try:
            tree: Optional[ast.AST] = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path,
                    exc.lineno or 0,
                    exc.offset or 0,
                    "SUP001",
                    f"file does not parse: {exc.msg}",
                )
            )
            tree = None
        parsed.append((path, source, tree))
    registry = build_registry([tree for _, _, tree in parsed if tree is not None])
    wire_registry = collect_wire_registry([(p, t) for p, _, t in parsed])
    tables = {}
    for path, source, tree in parsed:
        if tree is None:
            continue
        raw = FileAnalyzer(path, tree, registry).run()
        raw.extend(ResAnalyzer(path, tree).run())
        raw.extend(RngAnalyzer(path, tree).run())
        raw.extend(msg_findings_for_file(path, tree, wire_registry))
        table = parse_suppressions(source, path)
        tables[path] = table
        findings.extend(table.errors)
        findings.extend(
            f for f in raw if not table.is_suppressed(f.line, f.rule)
        )
    # Cross-file handler-coverage findings attach to the class-def site;
    # that file's suppression table still applies.
    for finding in msg_cross_file_findings(wire_registry):
        table = tables.get(finding.path)
        if table is None or not table.is_suppressed(finding.line, finding.rule):
            findings.append(finding)
    if select:
        wanted = set(select)
        findings = [f for f in findings if f.rule in wanted]
    if ignore:
        unwanted = set(ignore)
        findings = [f for f in findings if f.rule not in unwanted]
    return sorted(findings), len(parsed)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Collect files under ``paths`` and lint them."""
    files = collect_files(paths)
    sources = [(str(path), path.read_text(encoding="utf-8")) for path in files]
    return lint_sources(sources, select=select, ignore=ignore)
