"""Debit-credit database layout (section 3.1, Table 4.1).

The database scales with throughput as the TPC benchmarks require: for
``N`` nodes at 100 TPS each there are ``100 * N`` BRANCH records,
``1000 * N`` TELLERs and ``10,000,000 * N`` ACCOUNTs.

With clustering (the paper's default for all experiments), TELLER
records are stored in the page of their BRANCH record, so the
BRANCH/TELLER file has one page per branch and a transaction touches
three different pages (ACCOUNT, HISTORY, BRANCH/TELLER) and acquires
two page locks (none for HISTORY).

Partition indexes: 0 = BRANCH/TELLER (or BRANCH), 1 = ACCOUNT,
2 = HISTORY (clustered layout); the unclustered layout inserts TELLER
as its own partition.
"""

from __future__ import annotations


from repro.db.pages import PageId
from repro.db.schema import Database, Partition
from repro.system.config import DebitCreditConfig

__all__ = ["DebitCreditLayout"]


class DebitCreditLayout:
    """Record-to-page mapping and partition construction."""

    def __init__(self, config: DebitCreditConfig, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.config = config
        self.num_nodes = num_nodes
        self.total_branches = config.branches_per_node * num_nodes
        self.accounts_per_branch = config.accounts_per_branch
        self.total_accounts = self.total_branches * config.accounts_per_branch
        if config.accounts_per_branch % config.account_blocking_factor:
            raise ValueError(
                "accounts_per_branch must be a multiple of the ACCOUNT "
                "blocking factor so that account pages never span branches"
            )
        partitions = []
        if config.cluster_branch_teller:
            partitions.append(
                Partition(
                    "BRANCH_TELLER",
                    index=0,
                    num_pages=self.total_branches,
                    blocking_factor=1 + config.tellers_per_branch,
                    storage=config.branch_teller_storage,
                    disks=config.branch_teller_disks_per_node * num_nodes,
                    cache_pages=config.branch_teller_cache_pages,
                )
            )
            account_index, history_index = 1, 2
        else:
            partitions.append(
                Partition(
                    "BRANCH",
                    index=0,
                    num_pages=self.total_branches,
                    blocking_factor=1,
                    storage=config.branch_teller_storage,
                    disks=config.branch_teller_disks_per_node * num_nodes,
                    cache_pages=config.branch_teller_cache_pages,
                )
            )
            tellers = self.total_branches * config.tellers_per_branch
            partitions.append(
                Partition(
                    "TELLER",
                    index=1,
                    num_pages=max(1, tellers // config.tellers_per_branch),
                    blocking_factor=config.tellers_per_branch,
                    storage=config.branch_teller_storage,
                    disks=config.branch_teller_disks_per_node * num_nodes,
                    cache_pages=config.branch_teller_cache_pages,
                )
            )
            account_index, history_index = 2, 3
        partitions.append(
            Partition(
                "ACCOUNT",
                index=account_index,
                num_pages=self.total_accounts // config.account_blocking_factor,
                blocking_factor=config.account_blocking_factor,
                storage=config.account_storage,
                disks=config.account_disks_per_node * num_nodes,
                cache_pages=config.account_cache_pages,
            )
        )
        partitions.append(
            Partition(
                "HISTORY",
                index=history_index,
                num_pages=None,  # unbounded sequential file
                blocking_factor=config.history_blocking_factor,
                lockable=False,
                storage=config.history_storage,
                disks=config.history_disks_per_node * num_nodes,
                cache_pages=config.history_cache_pages,
            )
        )
        self.database = Database(partitions)
        self.branch_teller = partitions[0]
        self.account = self.database["ACCOUNT"]
        self.history = self.database["HISTORY"]

    # -- record-to-page mapping -------------------------------------------

    def branch_of_account(self, account_no: int) -> int:
        return account_no // self.accounts_per_branch

    def branch_teller_page(self, branch: int) -> PageId:
        """Page of the branch record (and its tellers when clustered)."""
        return self.branch_teller.page_id(branch)

    def teller_page(self, branch: int, teller_index: int) -> PageId:
        """Page of a teller of ``branch`` (equals the branch page when
        clustered)."""
        if self.config.cluster_branch_teller:
            return self.branch_teller_page(branch)
        teller_no = branch * self.config.tellers_per_branch + teller_index
        partition = self.database["TELLER"]
        return partition.page_id(partition.page_of_record(teller_no))

    def account_page(self, account_no: int) -> PageId:
        return self.account.page_id(self.account.page_of_record(account_no))

    # -- node affinity ------------------------------------------------------

    def home_node(self, branch: int) -> int:
        """Node owning ``branch`` under the BRANCH-based partitioning."""
        if not 0 <= branch < self.total_branches:
            raise ValueError(f"branch {branch} out of range")
        return branch // self.config.branches_per_node

    def gla_of_page(self, page: PageId) -> int:
        """GLA assignment coordinated with the affinity routing: each
        node is the authority for its branches' BRANCH/TELLER and
        ACCOUNT pages (section 3.2)."""
        index, page_no = page
        if index == self.branch_teller.index:
            return self.home_node(min(page_no, self.total_branches - 1))
        if not self.config.cluster_branch_teller and index == 1:
            # TELLER pages: one page per branch (blocking factor 10).
            return self.home_node(min(page_no, self.total_branches - 1))
        if index == self.account.index:
            first_account = page_no * self.config.account_blocking_factor
            return self.home_node(self.branch_of_account(first_account))
        # HISTORY pages are never locked; route by embedded node id.
        return page_no >> 40
