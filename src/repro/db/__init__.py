"""Database model: partitions, pages and version bookkeeping.

The paper's database model is page-oriented: a database is a set of
*partitions* (files); each partition consists of pages; each page holds
``blocking_factor`` records.  Concurrency control operates on pages,
which permits the integrated treatment of concurrency and coherency
control that the paper studies.

:mod:`repro.db.pages` adds a :class:`~repro.db.pages.VersionLedger`
that tracks the globally committed version and the on-storage version
of every page.  The ledger is the simulation's ground truth used to
*verify* coherency: a transaction that would read a stale page version
raises :class:`~repro.db.pages.CoherencyError` instead of silently
producing wrong results.
"""

from repro.db.pages import CoherencyError, PageId, VersionLedger
from repro.db.schema import Database, Partition, StorageKind

__all__ = [
    "CoherencyError",
    "Database",
    "PageId",
    "Partition",
    "StorageKind",
    "VersionLedger",
]
