"""Page version bookkeeping and coherency verification.

The simulation does not move real data, so coherency bugs would be
invisible unless checked explicitly.  The :class:`VersionLedger` is the
omniscient ground truth of the run:

* ``committed_version(page)`` -- version installed by the last
  *committed* transaction that modified the page (page sequence number
  in the paper's terms).
* ``storage_version(page)`` -- version currently in the *permanent
  database* (disk, non-volatile disk cache, or GEM-resident file).

Model components assert against the ledger: a buffer manager that is
about to satisfy an access with a version older than what concurrency/
coherency control promised raises :class:`CoherencyError`.  Every
integration test therefore doubles as a protocol-correctness check.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["PageId", "CoherencyError", "VersionLedger"]

#: Global page identifier: ``(partition_index, page_number)``.
PageId = Tuple[int, int]


class CoherencyError(Exception):
    """A transaction was about to observe a stale page version."""


class VersionLedger:
    """Ground-truth page version registry for one simulation run.

    All pages start at version 0 ("initial load"), both committed and
    on storage.
    """

    def __init__(self):
        self._committed: Dict[PageId, int] = {}
        self._storage: Dict[PageId, int] = {}

    # -- committed versions ------------------------------------------

    def committed_version(self, page: PageId) -> int:
        return self._committed.get(page, 0)

    def install_commit(self, page: PageId, version: int) -> None:
        """Record that ``version`` of ``page`` is now globally committed."""
        current = self._committed.get(page, 0)
        if version <= current:
            raise CoherencyError(
                f"commit would move page {page} version backwards "
                f"({current} -> {version})"
            )
        self._committed[page] = version

    # -- storage versions --------------------------------------------

    def storage_version(self, page: PageId) -> int:
        return self._storage.get(page, 0)

    def write_storage(self, page: PageId, version: int) -> None:
        """Record completion of a write of ``version`` to permanent storage.

        Out-of-order completion of an older write is ignored rather
        than rejected: two asynchronous writes of the same page may
        complete in either order, and storage keeps the newest.
        (Within one protocol run the page lock serializes writers, so
        in practice versions arrive in order.)
        """
        if version > self._storage.get(page, 0):
            self._storage[page] = version

    def stale_pages(self):
        """Pages whose permanent copy is behind the committed version.

        Yields ``(page, committed_version)`` pairs in deterministic
        (sorted) order.  Used by crash recovery to find pages whose
        only current copy may have died with a node's buffer.
        """
        for page in sorted(self._committed):
            committed = self._committed[page]
            if committed > self._storage.get(page, 0):
                yield page, committed

    # -- verification helpers ------------------------------------------

    def check_read(self, page: PageId, version: int, source: str) -> None:
        """Verify that a transaction reads the current committed version."""
        committed = self.committed_version(page)
        if version != committed:
            raise CoherencyError(
                f"stale read of page {page} from {source}: got version "
                f"{version}, committed is {committed}"
            )

    def check_storage_current(self, page: PageId, expected: int) -> int:
        """Verify the permanent database holds ``expected`` and return it."""
        on_storage = self.storage_version(page)
        if on_storage != expected:
            raise CoherencyError(
                f"storage read of page {page} returned version {on_storage}, "
                f"coherency control promised {expected}"
            )
        return on_storage
