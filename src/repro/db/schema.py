"""Partitions and databases.

A :class:`Partition` corresponds to one database file in the paper's
model (e.g. the clustered BRANCH/TELLER file, the ACCOUNT file, the
HISTORY file, or one of the thirteen files of the trace workload).
Partitions are the unit of storage allocation (disk, disk + cache, or
GEM-resident) and the unit for which locking can be switched off
(HISTORY accesses are latch-protected in the paper and set no locks).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["StorageKind", "Partition", "Database"]


class StorageKind(str, enum.Enum):
    """Where a partition's permanent pages live (section 3.3)."""

    #: Conventional magnetic disks, no cache.
    DISK = "disk"
    #: Disks behind a volatile disk cache (read caching only).
    DISK_VOLATILE_CACHE = "disk_vcache"
    #: Disks behind a non-volatile disk cache (read + write caching,
    #: asynchronous destage to disk).
    DISK_NONVOLATILE_CACHE = "disk_nvcache"
    #: Disks with a GEM write buffer (section 2's third usage form):
    #: writes become synchronous GEM accesses and are destaged to disk
    #: asynchronously; reads go to the disks.
    DISK_GEM_WRITE_BUFFER = "disk_gem_wbuf"
    #: File resident in Global Extended Memory.
    GEM = "gem"


class Partition:
    """A database file.

    Parameters
    ----------
    name:
        Human-readable file name (e.g. ``"ACCOUNT"``).
    index:
        Small integer identifying the partition inside its database;
        page ids are ``(index, page_no)`` tuples.
    num_pages:
        Number of pages, or ``None`` for an unbounded sequential file
        (HISTORY grows forever; only the append cursor matters).
    blocking_factor:
        Records per page.
    lockable:
        If false, no page locks are acquired for this partition (the
        paper switches locking off for HISTORY, assuming latches).
    storage:
        Storage allocation for the permanent copy of the file.
    disks:
        Number of disk drives the file is declustered over (ignored for
        GEM-resident files).
    cache_pages:
        Capacity of the disk cache in pages (only used for the two
        cached storage kinds).
    """

    def __init__(
        self,
        name: str,
        index: int,
        num_pages: Optional[int],
        blocking_factor: int = 1,
        lockable: bool = True,
        storage: StorageKind = StorageKind.DISK,
        disks: int = 1,
        cache_pages: int = 0,
    ):
        if num_pages is not None and num_pages <= 0:
            raise ValueError("num_pages must be positive or None")
        if blocking_factor <= 0:
            raise ValueError("blocking_factor must be positive")
        if disks <= 0:
            raise ValueError("disks must be positive")
        self.name = name
        self.index = index
        self.num_pages = num_pages
        self.blocking_factor = blocking_factor
        self.lockable = lockable
        self.storage = StorageKind(storage)
        self.disks = disks
        self.cache_pages = cache_pages

    def page_of_record(self, record_no: int) -> int:
        """Page number holding ``record_no`` (0-based, clustered layout)."""
        if record_no < 0:
            raise ValueError("record_no must be non-negative")
        return record_no // self.blocking_factor

    def page_id(self, page_no: int) -> Tuple[int, int]:
        """Global page id of page ``page_no`` of this partition."""
        if page_no < 0:
            raise ValueError("page_no must be non-negative")
        if self.num_pages is not None and page_no >= self.num_pages:
            raise ValueError(
                f"page {page_no} out of range for {self.name!r} "
                f"({self.num_pages} pages)"
            )
        return (self.index, page_no)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Partition({self.name!r}, index={self.index}, pages={self.num_pages}, "
            f"bf={self.blocking_factor}, storage={self.storage.value})"
        )


class Database:
    """An ordered collection of partitions with name lookup."""

    def __init__(self, partitions: Iterable[Partition]):
        self.partitions: List[Partition] = list(partitions)
        self._by_name: Dict[str, Partition] = {}
        for partition in self.partitions:
            if partition.name in self._by_name:
                raise ValueError(f"duplicate partition name {partition.name!r}")
            self._by_name[partition.name] = partition
        for expected_index, partition in enumerate(self.partitions):
            if partition.index != expected_index:
                raise ValueError(
                    f"partition {partition.name!r} has index {partition.index}, "
                    f"expected {expected_index}"
                )

    def __iter__(self):
        return iter(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)

    def __getitem__(self, name: str) -> Partition:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def by_index(self, index: int) -> Partition:
        return self.partitions[index]

    def total_pages(self) -> int:
        """Total pages over all bounded partitions."""
        return sum(p.num_pages for p in self.partitions if p.num_pages is not None)
