"""Fault injection and node failover.

See :mod:`repro.faults.manager` for the crash/recovery lifecycle and
:mod:`repro.faults.config` for the schedule and cost parameters.
"""

from repro.faults.config import CrashSpec, FaultConfig
from repro.faults.manager import CrashRecord, FaultManager

__all__ = ["CrashSpec", "FaultConfig", "CrashRecord", "FaultManager"]
