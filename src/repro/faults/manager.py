"""Fault injection and node-failover orchestration.

The :class:`FaultManager` crashes nodes according to the configured
:class:`~repro.faults.config.FaultConfig`, tears their volatile state
down, drives the coupling regime's recovery protocol, and restarts
them.  One crash/recovery cycle:

1. **Crash (zero simulated time).**  The node is marked down; every
   in-flight transaction lifecycle and message-handler process on it is
   interrupted with :class:`~repro.errors.NodeCrashed` (their cleanup
   handlers run, so resources return consistently); the mailbox is
   drained; in-flight messages to/from the node are dropped by the
   communication subsystem; reply events *watched* by pending remote
   requests are answered with a ``{"crashed": True}`` sentinel; pages
   whose only current copy died with the node's buffer are identified
   from the version ledger and fenced behind ``pending_redo`` events;
   finally the buffer is dropped and the protocol's synchronous
   ``crash_node`` hook runs (PCL closes the dead GLA partition; GEM
   clears the node's lock authorizations).

2. **Failover (simulated work).**  After ``detection_delay`` the
   protocol's ``recover`` generator replays the regime's failover
   protocol -- close coupling reuses the surviving (non-volatile) GLT,
   loose coupling reassigns the GLA partition and reconstructs its
   lock table from the survivors over explicit messages -- and REDOes
   the lost pages from the crashed node's surviving log.

3. **Restart and reintegration.**  When the configured down time
   elapses the node pays its restart CPU, is marked up (arrivals flow
   to it again), and the protocol's ``reintegrate`` hook runs (PCL
   transfers the GLA partition back; GEM needs nothing -- the lock
   state survived in GEM).

Only one failure is in flight at a time (the paper's single-failure
availability analysis): a scheduled crash that would overlap an ongoing
crash/recovery cycle, or leave no node up, is skipped and counted in
``crashes_skipped``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, TYPE_CHECKING

from repro.errors import NodeCrashed
from repro.faults.config import CrashSpec, FaultConfig
from repro.obs import phases

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.pages import PageId
    from repro.node.node import Node
    from repro.sim.engine import Event, Process
    from repro.system.cluster import Cluster

__all__ = ["CrashRecord", "FaultManager"]


class CrashRecord:
    """Bookkeeping of one crash/recovery cycle."""

    __slots__ = (
        "node",
        "crash_time",
        "failover_done",
        "restart_time",
        "up_time",
        "reintegration_done",
        "killed",
        "lost",
    )

    def __init__(self, node: int, crash_time: float) -> None:
        self.node = node
        self.crash_time = crash_time
        #: Simulation time the surviving nodes regained full service.
        self.failover_done: Optional[float] = None
        #: Simulation time the node began its restart.
        self.restart_time: Optional[float] = None
        #: Simulation time the node was marked up again.
        self.up_time: Optional[float] = None
        #: Simulation time reintegration work finished (PCL failback).
        self.reintegration_done: Optional[float] = None
        #: Transactions killed by the crash (their state is read by the
        #: recovery protocols before any cleanup).
        self.killed: List = []
        #: page -> committed version that must be REDOne from the log.
        self.lost: Dict = {}


class FaultManager:
    """Crashes and restarts nodes; owns all failure-related state."""

    def __init__(self, cluster: "Cluster", config: FaultConfig) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config
        self.stream = cluster.streams.stream("faults")
        #: Node ids currently crashed.
        self.down: Set[int] = set()
        self.records: List[CrashRecord] = []
        self.crashes = 0
        self.crashes_skipped = 0
        self.aborted_by_crash = 0
        self.redirected_arrivals = 0
        #: page -> event fencing storage reads until REDO completes.
        self._pending_redo: Dict["PageId", "Event"] = {}
        #: dst node -> reply events of in-flight requests to it.
        #: Insertion-ordered dict-as-set: Event hashes by identity, so a
        #: real set would fire the crash sentinels in address order --
        #: nondeterministic across interpreter runs.
        self._watched: Dict[int, Dict["Event", None]] = {}
        #: Message-handler processes per node (pruned opportunistically).
        self._handlers: Dict[int, List["Process"]] = {}
        #: PCL partition gates: home -> event open()ed when the
        #: partition accepts requests again.
        self._gates: Dict[int, "Event"] = {}
        #: PCL GLA reassignment: home -> node currently hosting it.
        self._gla_override: Dict[int, int] = {}

    def start(self) -> None:
        """Spawn the fault-injection processes (call once, at build)."""
        for index, spec in enumerate(self.config.crashes):
            self.sim.process(self._scripted(spec), name=f"fault-crash{index}")
        if self.config.mttf > 0:
            self.sim.process(self._periodic(), name="fault-periodic")

    # -- liveness queries (hot path: must be cheap) ---------------------

    def is_down(self, node_id: int) -> bool:
        return node_id in self.down

    def coordinator(self) -> int:
        """Lowest-numbered surviving node (runs recovery work)."""
        for node_id in range(self.cluster.config.num_nodes):
            if node_id not in self.down:
                return node_id
        raise RuntimeError("no surviving node")  # guarded against in _cycle

    def reroute(self, node_id: int) -> int:
        """Arrival routing: next surviving node after a crashed target."""
        if node_id not in self.down:
            return node_id
        num_nodes = self.cluster.config.num_nodes
        for offset in range(1, num_nodes):
            candidate = (node_id + offset) % num_nodes
            if candidate not in self.down:
                self.redirected_arrivals += 1
                return candidate
        raise RuntimeError("all nodes down")

    # -- reply watching -------------------------------------------------

    def watch(self, dst: int, reply: "Event") -> None:
        """Register a pending request's reply event against ``dst``.

        If ``dst`` crashes before answering, the event is answered with
        a ``{"crashed": True}`` sentinel so the requester can retry; a
        late genuine reply is then dropped by the comm subsystem.  If
        ``dst`` is already down the sentinel fires immediately.
        """
        if dst in self.down:
            reply.succeed({"crashed": True})
            return
        self._watched.setdefault(dst, {})[reply] = None

    def unwatch(self, dst: int, reply: "Event") -> None:
        watched = self._watched.get(dst)
        if watched is not None:
            watched.pop(reply, None)

    def _answer_watched(self, node_id: int) -> None:
        """Fire the crash sentinel on every reply watched for ``node_id``.

        Sentinels fire in watch-registration order; the waiters resume
        in that order, so the post-crash event schedule is reproducible.
        """
        for reply in self._watched.pop(node_id, {}):
            if not reply.triggered:
                reply.succeed({"crashed": True})

    # -- REDO fencing ---------------------------------------------------

    def wait_redo(self, page: "PageId") -> Generator["Event", Any, None]:
        """Block while ``page``'s permanent copy awaits REDO recovery."""
        event = self._pending_redo.get(page)
        if event is not None:
            yield event

    def _redo_done(self, page: "PageId") -> None:
        event = self._pending_redo.pop(page, None)
        if event is not None and not event.triggered:
            event.succeed()

    def redo_pages(
        self, record: CrashRecord, worker_id: int
    ) -> Generator["Event", Any, None]:
        """REDO ``record.lost`` at ``worker_id`` from the surviving log.

        Shared by both regimes; what differs is *who* runs it and what
        surrounds it.  The crashed node's log is scanned sequentially
        (one log-device access per ``redo_batch_pages`` REDO records),
        each page costs recovery CPU, and the restoring writes of a
        batch proceed in parallel across the database disks -- the
        standard recovery structure (sequential log read, parallel
        random write-back).
        """
        cluster = self.cluster
        worker = cluster.nodes[worker_id]
        pages = sorted(record.lost)
        batch = max(1, self.config.redo_batch_pages)
        for start in range(0, len(pages), batch):
            chunk = pages[start : start + batch]
            yield from cluster.storage.read_log(record.node, worker.cpu)
            yield from worker.cpu.consume(
                len(chunk) * self.config.recovery_instructions_per_page
            )
            dones = []
            for page in chunk:
                done = self.sim.event()
                self.sim.process(
                    self._redo_write(record.lost[page], page, worker, done),
                    name="redo-write",
                )
                dones.append(done)
            yield self.sim.all_of(dones)

    def _redo_write(
        self, version: int, page: "PageId", worker: "Node", done: "Event"
    ) -> Generator["Event", Any, None]:
        yield from self.cluster.storage.write(page, version, worker.cpu)
        self._redo_done(page)
        done.succeed()

    # -- handler tracking ----------------------------------------------

    def track_handler(self, node_id: int, proc: "Process") -> None:
        """Remember a message-handler process for crash teardown."""
        procs = self._handlers.setdefault(node_id, [])
        if len(procs) > 64:
            live = [p for p in procs if p.is_alive]
            self._handlers[node_id] = procs = live
        procs.append(proc)

    # -- PCL partition gates --------------------------------------------

    def close_partition(self, home: int) -> None:
        """Fence a GLA partition while it is reassigned/transferred."""
        if home not in self._gates:
            self._gates[home] = self.sim.event()

    def open_partition(self, home: int, host: Optional[int]) -> None:
        """Reopen a partition, served by ``host`` (None: its own node)."""
        if host is None or host == home:
            self._gla_override.pop(home, None)
        else:
            self._gla_override[home] = host
        gate = self._gates.pop(home, None)
        if gate is not None:
            gate.succeed()

    def resolve_gla(self, home: int) -> Generator["Event", Any, int]:
        """Effective host of GLA partition ``home`` (waits out gates)."""
        while True:
            gate = self._gates.get(home)
            if gate is None:
                break
            yield gate
        return self._gla_override.get(home, home)

    def gla_host(self, home: int) -> int:
        """Current host without waiting (introspection/tests)."""
        return self._gla_override.get(home, home)

    # -- fault processes ------------------------------------------------

    def _scripted(self, spec: CrashSpec) -> Generator["Event", Any, None]:
        yield self.sim.timeout(spec.time)
        yield from self._cycle(spec.node, spec.down_time)

    def _periodic(self) -> Generator["Event", Any, None]:
        remaining = self.config.max_crashes
        num_nodes = self.cluster.config.num_nodes
        while remaining > 0:
            yield self.sim.timeout(self.stream.exponential(self.config.mttf))
            node_id = self.stream.randint(0, num_nodes - 1)
            down_time = self.stream.exponential(self.config.mttr)
            if down_time <= 0:
                continue
            yield from self._cycle(node_id, down_time)
            remaining -= 1

    def _cycle(
        self, node_id: int, down_time: float
    ) -> Generator["Event", Any, None]:
        """One complete crash / failover / restart / reintegration."""
        if (
            node_id in self.down
            or self.down
            or self._gates
            or self._gla_override
            or self.cluster.config.num_nodes < 2
        ):
            # Single-failure analysis: never overlap an ongoing cycle
            # (including a pending PCL failback) or kill the last node.
            self.crashes_skipped += 1
            return
        record = self._crash(node_id)
        if self.config.detection_delay > 0:
            yield self.sim.timeout(self.config.detection_delay)
        yield from self.cluster.protocol.recover(self, record)
        # REDO fences must all be lifted by now; anything the protocol
        # did not cover would deadlock readers, so fail fast instead.
        leftover = [p for p in record.lost if p in self._pending_redo]
        if leftover:
            raise RuntimeError(f"recovery left pages unredone: {leftover[:5]}")
        record.failover_done = self.sim.now
        self.cluster.recorder.interval(
            node_id, phases.RECOVERY_FAILOVER, record.crash_time, self.sim.now
        )
        restart_at = record.crash_time + down_time
        if restart_at > self.sim.now:
            yield self.sim.timeout(restart_at - self.sim.now)
        record.restart_time = self.sim.now
        node = self.cluster.nodes[node_id]
        yield from node.cpu.consume(self.config.restart_instructions)
        self.down.discard(node_id)
        record.up_time = self.sim.now
        yield from self.cluster.protocol.reintegrate(self, record)
        record.reintegration_done = self.sim.now
        self.cluster.recorder.interval(
            node_id,
            phases.RECOVERY_REINTEGRATION,
            record.restart_time,
            self.sim.now,
        )

    # -- the crash itself (synchronous) ---------------------------------

    def _crash(self, node_id: int) -> CrashRecord:
        """Tear down ``node_id``'s volatile state at the current instant.

        Runs without yielding: no other process can observe a
        half-crashed node.
        """
        cluster = self.cluster
        node = cluster.nodes[node_id]
        self.down.add(node_id)
        self.crashes += 1
        record = CrashRecord(node_id, self.sim.now)
        self.records.append(record)

        # 1. Kill the node's in-flight transactions.  Interrupts unwind
        # the lifecycles through their cleanup handlers (resource
        # cancel-on-throw etc.); NodeCrashed is swallowed by the
        # transaction manager, so the work simply disappears.
        for txn, proc in list(node.tm.active.values()):
            if proc.interrupt(NodeCrashed(node_id)):
                record.killed.append(txn)
        self.aborted_by_crash += len(record.killed)

        # 2. Purge the dead transactions from global lock state that
        # does *not* unwind with their processes: queued (not yet
        # granted) lock requests anywhere in the cluster, and deadlock
        # detector registrations.  Locks they *hold* stay until the
        # recovery protocol releases them -- that delay is part of the
        # failover cost.
        for txn in record.killed:
            # Invoking the abort callback cancels the queued request
            # AND unwinds a GLA-side handler process blocked on the
            # dead transaction's behalf at a surviving node.
            cluster.detector.abort_blocked(txn.txn_id)
            cluster.detector.clear(txn.txn_id)
        for table in cluster.protocol.lock_tables():
            for txn in record.killed:
                if table.is_blocked(txn.txn_id):
                    table.cancel(txn.txn_id, table.blocked_page(txn.txn_id))

        # 3. Kill message-handler processes and drop queued messages.
        for proc in self._handlers.pop(node_id, []):
            proc.interrupt(NodeCrashed(node_id))
        node.mailbox.clear()

        # 4. Answer watched replies with the crash sentinel so blocked
        # remote requesters on surviving nodes can retry.
        self._answer_watched(node_id)

        # 5. The buffer content is gone.  Afterwards, any page whose
        # committed version now exists in no surviving buffer and not
        # on permanent storage must be REDOne from the log before
        # anyone may read it from storage.
        node.buffer.drop_all()
        ledger = cluster.ledger
        up_nodes = [n for n in cluster.nodes if n.node_id not in self.down]
        for page, committed in ledger.stale_pages():
            if any(
                survivor.buffer.has_current_version(page, committed)
                for survivor in up_nodes
            ):
                continue
            record.lost[page] = committed
        # 6. Protocol-specific synchronous teardown (may extend
        # record.lost); then fence the lost pages.
        cluster.protocol.crash_node(self, record)
        for page in record.lost:
            if page not in self._pending_redo:
                self._pending_redo[page] = self.sim.event()
        return record

    # -- availability metrics -------------------------------------------

    def mean_failover_time(self) -> float:
        times = [
            r.failover_done - r.crash_time
            for r in self.records
            if r.failover_done is not None
        ]
        return sum(times) / len(times) if times else 0.0

    def mean_reintegration_time(self) -> float:
        times = [
            r.reintegration_done - r.restart_time
            for r in self.records
            if r.reintegration_done is not None and r.restart_time is not None
        ]
        return sum(times) / len(times) if times else 0.0

    def total_down_time(self, now: Optional[float] = None) -> float:
        now = self.sim.now if now is None else now
        total = 0.0
        for record in self.records:
            up_at = record.up_time if record.up_time is not None else now
            total += max(0.0, up_at - record.crash_time)
        return total
