"""Fault-injection configuration.

A :class:`FaultConfig` describes *when* nodes crash (a scripted list of
:class:`CrashSpec` events, a periodic MTTF/MTTR process, or both) and
*how expensive* recovery is (restart CPU, per-lock and per-page
recovery costs, failure-detection delay).

Kept free of simulation imports so that :mod:`repro.system.config` can
embed it in :class:`~repro.system.config.SystemConfig` (and hash it
into result-cache keys via ``dataclasses.asdict``) without import
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["CrashSpec", "FaultConfig"]


@dataclass
class CrashSpec:
    """One scripted crash: ``node`` fails at ``time`` for ``down_time``.

    Times are simulation seconds measured from the start of the run
    (warm-up included), so crashes meant for the measurement interval
    must be scheduled after ``warmup_time``.
    """

    time: float
    node: int
    down_time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"crash time must be >= 0, got {self.time!r}")
        if self.node < 0:
            raise ValueError(f"crash node must be >= 0, got {self.node!r}")
        if self.down_time <= 0:
            raise ValueError(f"down_time must be > 0, got {self.down_time!r}")


@dataclass
class FaultConfig:
    """Fault schedule plus recovery cost model.

    The cost parameters follow the paper's instruction-based accounting
    (Table 4.1 style): recovery work is charged as CPU instructions at
    the recovering node plus explicit messages and I/O, so close and
    loose coupling pay their structurally different failover protocols
    rather than a fixed penalty.
    """

    #: Scripted crashes (deterministic; independent of the RNG).
    crashes: List[CrashSpec] = field(default_factory=list)
    #: Mean time to failure for the periodic (Poisson) fault process;
    #: 0 disables periodic faults.  Seeded from the "faults" stream.
    mttf: float = 0.0
    #: Mean repair time for periodic faults (exponential).
    mttr: float = 0.0
    #: Upper bound on periodic crashes (scripted crashes don't count).
    max_crashes: int = 1
    #: Failure-detection delay before failover work starts (timeouts /
    #: membership protocol), in seconds.
    detection_delay: float = 0.010
    #: CPU instructions for the restarted node to rejoin (reboot, DBMS
    #: restart, cache warm-start bookkeeping).
    restart_instructions: float = 5.0e6
    #: CPU instructions per lock entry handled during GLA lock-table
    #: reconstruction / dead-transaction lock cleanup.
    recovery_instructions_per_lock: float = 3000.0
    #: CPU instructions per page REDO (log record apply).
    recovery_instructions_per_page: float = 3000.0
    #: REDO records applied per sequential log-device access (log
    #: recovery scans the log, it does not random-read it).
    redo_batch_pages: int = 16

    def __post_init__(self) -> None:
        self.crashes = [
            crash if isinstance(crash, CrashSpec) else CrashSpec(**crash)
            for crash in self.crashes
        ]
        if self.mttf < 0 or self.mttr < 0:
            raise ValueError("mttf/mttr must be >= 0")
        if self.mttf == 0 and self.mttr > 0:
            raise ValueError("mttr given without mttf")
        if self.mttf > 0 and self.mttr <= 0:
            raise ValueError("periodic faults need mttr > 0")

    @property
    def enabled(self) -> bool:
        return bool(self.crashes) or self.mttf > 0
