"""repro: reproduction of Rahm (ICDCS 1993), "Evaluation of Closely
Coupled Systems for High Performance Database Processing".

A comprehensive discrete-event simulation of database sharing (shared
disk) systems under close coupling (Global Extended Memory with a
global lock table) and loose coupling (primary copy locking over
messages), including the full substrate: simulation kernel, device
models (GEM, disks, disk caches, network), processing-node model
(transaction manager, LRU buffer manager, 2PL lock tables), workload
generators (debit-credit and trace-driven) and the experiment harness
regenerating every figure of the paper's evaluation.

Quick start::

    from repro import SystemConfig, run_simulation

    result = run_simulation(SystemConfig(num_nodes=4, coupling="gem",
                                         routing="affinity",
                                         update_strategy="noforce"))
    print(result.summary())
"""

from repro.system.config import (
    Coupling,
    DebitCreditConfig,
    RoutingStrategy,
    SystemConfig,
    TraceWorkloadConfig,
    UpdateStrategy,
)
from repro.system.parallel import (
    ReplicatedResult,
    ReplicateStats,
    ResultCache,
    SweepRunner,
)
from repro.system.results import RunResult
from repro.system.runner import find_throughput_at_utilization, run_simulation

__version__ = "1.1.0"

__all__ = [
    "Coupling",
    "DebitCreditConfig",
    "ReplicatedResult",
    "ReplicateStats",
    "ResultCache",
    "RoutingStrategy",
    "RunResult",
    "SweepRunner",
    "SystemConfig",
    "TraceWorkloadConfig",
    "UpdateStrategy",
    "find_throughput_at_utilization",
    "run_simulation",
    "__version__",
]
