"""Failover experiment -- availability under a single node crash.

Not a figure of the paper: section 5 argues the availability advantage
of close coupling qualitatively (GEM-resident lock state survives a
node failure, so recovery avoids the loosely coupled system's GLA
reassignment and lock-table reconstruction).  This experiment makes
that argument measurable.  One node of a 4-node system is crashed
mid-measurement and restarted after a fixed outage; for each coupling
regime we report

* the failover time (crash until survivors regained full service),
* the reintegration time (restart until the node fully rejoined),
* the throughput dip: depth (lowest windowed throughput relative to
  the pre-crash level) and width (time until the windowed throughput
  is back within 5 % of the pre-crash level), and
* the transactions killed by the crash.

Expected shape: all regimes dip when the node dies and recover to the
pre-crash throughput (the surviving nodes absorb the redirected
arrivals), but the close coupling reintegrates faster -- its failover
is dominated by REDO alone, and reintegration needs only the restart
CPU, while PCL pays the GLA reassignment, the lock-state exchange and
the failback transfer as explicit message/CPU work.  The disaggregated
regime (RDMA) sits between the two: pool-resident pages and lock words
survive the crash (no lock-table reconstruction, less REDO), but
one-sided locks of the dead node stay un-revocable until its lease
expires, and reintegration pays an RDMA re-registration on top of the
restart CPU.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.experiments.common import Scale
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.monitor import TimeSeriesMonitor
from repro.system.results import RunResult

__all__ = ["run", "base_config", "FailoverPoint", "FailoverResult", "COUPLINGS"]

#: Coupling regimes compared by default.
COUPLINGS: Sequence[str] = ("gem", "pcl", "rdma")

#: Monitor sampling window (simulated seconds).
WINDOW = 0.25
#: "Recovered" means windowed throughput within 5 % of pre-crash.
RECOVERY_BAND = 0.95


def base_config(scale: Scale) -> SystemConfig:
    # The crash/recovery cycle has fixed absolute costs (detection
    # delay, REDO, down time, 0.5 s restart CPU, PCL failback); below
    # ~5 s of measurement it cannot complete, so pin a minimum window
    # rather than report a truncated cycle at small scales.
    measure_time = max(scale.measure_time, 5.0)
    crash_time = scale.warmup_time + measure_time * 0.3
    return SystemConfig(
        num_nodes=4,
        routing="affinity",
        update_strategy="noforce",
        buffer_pages_per_node=200,
        arrival_rate_per_node=100.0,
        warmup_time=scale.warmup_time,
        measure_time=measure_time,
        faults={
            "crashes": [
                {"node": 1, "time": crash_time, "down_time": measure_time * 0.2}
            ]
        },
    )


@dataclasses.dataclass
class FailoverPoint:
    """One regime's crash/recovery behaviour."""

    label: str
    result: RunResult
    pre_crash_throughput: float
    dip_throughput: float
    recovery_width: float

    @property
    def dip_depth(self) -> float:
        """Lowest windowed throughput as a fraction of pre-crash."""
        if self.pre_crash_throughput <= 0:
            return 0.0
        return self.dip_throughput / self.pre_crash_throughput

    @property
    def recovered(self) -> bool:
        return self.recovery_width >= 0


@dataclasses.dataclass
class FailoverResult:
    """Duck-types the figure-result interface used by run_all."""

    title: str
    description: str
    points: List[FailoverPoint]

    def table(self) -> str:
        header = [
            "regime",
            "failover[s]",
            "reintegration[s]",
            "pre-crash[TPS]",
            "dip[TPS]",
            "dip depth",
            "recovery width[s]",
            "killed",
        ]
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.label,
                    f"{p.result.mean_failover_seconds:.3f}",
                    f"{p.result.mean_reintegration_seconds:.3f}",
                    f"{p.pre_crash_throughput:.0f}",
                    f"{p.dip_throughput:.0f}",
                    f"{p.dip_depth:.0%}",
                    f"{p.recovery_width:.2f}" if p.recovered else "never",
                    str(p.result.aborted_by_crash),
                ]
            )
        widths = [
            max(len(header[i]), max(len(r[i]) for r in rows))
            for i in range(len(header))
        ]
        fmt = "  ".join(f"{{:>{w}}}" for w in widths)
        lines = [
            self.title,
            self.description,
            "",
            fmt.format(*header),
            "-" * (sum(widths) + 2 * (len(widths) - 1)),
        ]
        lines += [fmt.format(*row) for row in rows]
        return "\n".join(lines)

    def breakdown_table(self) -> str:
        return ""


def _run_point(label: str, config: SystemConfig) -> FailoverPoint:
    cluster = Cluster(config)
    monitor = TimeSeriesMonitor(cluster, interval=WINDOW)
    cluster.sim.run(until=config.warmup_time)
    cluster.reset_stats()
    monitor.notify_reset()
    cluster.sim.run(until=config.warmup_time + config.measure_time)
    result = cluster.collect_results(config.measure_time)

    crash = config.faults.crashes[0]
    pre = [
        row["throughput"]
        for row in monitor.samples
        if config.warmup_time < row["time"] <= crash.time
    ]
    pre_crash = sum(pre) / len(pre) if pre else 0.0
    post = [row for row in monitor.samples if row["time"] > crash.time]
    dip = min((row["throughput"] for row in post), default=0.0)
    recovery_width = -1.0
    for row in post:
        if pre_crash > 0 and row["throughput"] >= RECOVERY_BAND * pre_crash:
            recovery_width = row["time"] - crash.time
            break
    return FailoverPoint(label, result, pre_crash, dip, recovery_width)


def run(
    scale: Scale,
    runner: Optional[object] = None,
    couplings: Sequence[str] = COUPLINGS,
    protocol: str = "2pl",
) -> FailoverResult:
    """``runner`` is accepted for interface parity but unused: the
    throughput time series requires an in-process monitor."""
    points = [
        _run_point(
            coupling.upper(),
            base_config(scale).replace(coupling=coupling, protocol=protocol),
        )
        for coupling in couplings
    ]
    return FailoverResult(
        "Failover",
        "single node crash at 30 % of the measurement interval, "
        "4 nodes, affinity/NOFORCE, 100 TPS per node",
        points,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(Scale.quick()).table())
