"""Fig. 4.5 -- Primary copy locking vs GEM locking (response times).

All files on plain disks; curves for both couplings, both update
strategies, both routings and both buffer sizes (200, 1000).

Expected shape (section 4.5): with affinity routing PCL matches GEM
locking (coordinated GLA allocation keeps lock processing local); with
random routing PCL is always worse and the gap grows with the number
of nodes; the PCL/GEM gap is smaller for NOFORCE than for FORCE and
shrinks further at buffer 1000 (PCL piggybacks page transfers on
regular lock messages, GEM locking pays extra page-request messages).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, Scale, sweep_all
from repro.system.config import SystemConfig
from repro.system.parallel import SweepRunner

__all__ = ["run"]


def run(scale: Scale, buffer_sizes=(200, 1000),
        runner: Optional[SweepRunner] = None,
        protocol: str = "2pl") -> ExperimentResult:
    specs = []
    for buffer_pages in buffer_sizes:
        for coupling in ("gem", "pcl"):
            for routing in ("affinity", "random"):
                for update in ("noforce", "force"):
                    config = SystemConfig(
                        coupling=coupling,
                        routing=routing,
                        update_strategy=update,
                        protocol=protocol,
                        buffer_pages_per_node=buffer_pages,
                        warmup_time=scale.warmup_time,
                        measure_time=scale.measure_time,
                        collect_breakdown=True,
                    )
                    label = (
                        f"{coupling}/{routing}/{update.upper()}/buf{buffer_pages}"
                    )
                    if protocol != "2pl":
                        label += f"/{protocol}"
                    specs.append((label, config))
    series = sweep_all(specs, scale.node_counts, runner, label="fig45")
    return ExperimentResult(
        "Fig 4.5",
        "PCL vs GEM locking response times",
        series,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run(Scale.quick())
    print(result.table())
    for s in result.series:
        if s.label.startswith("pcl"):
            shares = [round(r.local_lock_share, 2) for _n, r in s.points]
            print(f"local lock share {s.label}: {shares}")
    print()
    print(result.breakdown_table())
