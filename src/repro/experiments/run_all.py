"""Run every experiment and write the tables to a results directory.

Usage::

    python -m repro.experiments.run_all [quick|smoke|full] [outdir]

``quick`` (default) regenerates all figures in CI-sized sweeps;
``full`` uses paper-sized runs (substantially longer).
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments import fig41, fig42, fig43, fig44, fig45, fig46, fig47, table41
from repro.experiments.common import Scale
from repro.system.config import SystemConfig

__all__ = ["run_all"]

FIGURES = [
    ("fig41", fig41),
    ("fig42", fig42),
    ("fig43", fig43),
    ("fig44", fig44),
    ("fig45", fig45),
    ("fig46", fig46),
    ("fig47", fig47),
]


def run_all(scale: Scale, outdir: str) -> None:
    os.makedirs(outdir, exist_ok=True)
    # Table 4.1 first: parameters and the anchor run.
    started = time.time()
    lines = []
    width = max(len(k) for k, _ in table41.parameter_rows(SystemConfig()))
    for key, value in table41.parameter_rows(SystemConfig()):
        lines.append(f"{key:<{width}}  {value}")
    anchor = table41.run(scale)
    lines.append("")
    lines.append(anchor.summary())
    for check, ok in table41.validate(anchor).items():
        lines.append(f"  {'PASS' if ok else 'FAIL'}  {check}")
    path = os.path.join(outdir, "table41.txt")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"table41 -> {path} ({time.time() - started:.0f}s)")
    # All figures.
    for name, module in FIGURES:
        started = time.time()
        result = module.run(scale)
        path = os.path.join(outdir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(result.table() + "\n")
        print(f"{name} -> {path} ({time.time() - started:.0f}s)")


def main(argv) -> int:
    scale_name = argv[1] if len(argv) > 1 else "quick"
    outdir = argv[2] if len(argv) > 2 else "results"
    factory = {"quick": Scale.quick, "smoke": Scale.smoke, "full": Scale.full}
    if scale_name not in factory:
        print(f"unknown scale {scale_name!r}; use quick|smoke|full")
        return 2
    run_all(factory[scale_name](), outdir)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv))
