"""Run every experiment and write the tables to a results directory.

Usage::

    python -m repro.experiments.run_all [quick|smoke|full] [outdir]
        [--jobs N] [--seeds K] [--no-cache]

``quick`` (default) regenerates all figures in CI-sized sweeps;
``full`` uses paper-sized runs (substantially longer).  ``--jobs``
fans the simulations of each figure out over worker processes (the
tables are bit-identical for any job count), ``--seeds`` replicates
every point over independent seeds and reports mean ± 95 % CI, and the
result cache (under ``<outdir>/.simcache``) makes re-runs only
simulate changed points -- disable it with ``--no-cache``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional

from repro.experiments import (
    fig41,
    fig42,
    fig43,
    fig44,
    fig45,
    fig46,
    fig47,
    fig_failover,
    fig_regimes,
    fig_shootout,
    table41,
)
from repro.experiments.common import Scale
from repro.system.config import SystemConfig
from repro.system.parallel import ResultCache, SweepRunner

__all__ = ["run_all"]

FIGURES = [
    ("fig41", fig41),
    ("fig42", fig42),
    ("fig43", fig43),
    ("fig44", fig44),
    ("fig45", fig45),
    ("fig46", fig46),
    ("fig47", fig47),
    ("fig_failover", fig_failover),
    ("fig_shootout", fig_shootout),
    ("fig_regimes", fig_regimes),
]


def run_all(
    scale: Scale,
    outdir: str,
    jobs: int = 1,
    seeds: int = 1,
    use_cache: bool = True,
    runner: Optional[SweepRunner] = None,
) -> None:
    os.makedirs(outdir, exist_ok=True)
    if runner is None:
        cache = ResultCache(os.path.join(outdir, ".simcache")) if use_cache else None
        runner = SweepRunner(jobs=jobs, seeds=seeds, cache=cache,
                             progress=sys.stderr.isatty())
    with runner:
        # Table 4.1 first: parameters and the anchor run.
        started = time.time()  # simlint: disable=DET002 -- host wall-clock progress report, not simulated time
        lines = []
        width = max(len(k) for k, _ in table41.parameter_rows(SystemConfig()))
        for key, value in table41.parameter_rows(SystemConfig()):
            lines.append(f"{key:<{width}}  {value}")
        anchor = table41.run(scale, runner=runner)
        lines.append("")
        lines.append(anchor.summary())
        for check, ok in table41.validate(anchor).items():
            lines.append(f"  {'PASS' if ok else 'FAIL'}  {check}")
        path = os.path.join(outdir, "table41.txt")
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        # simlint: disable-next=DET002 -- host wall-clock progress report, not simulated time
        print(f"table41 -> {path} ({time.time() - started:.0f}s)")
        # All figures.
        for name, module in FIGURES:
            started = time.time()  # simlint: disable=DET002 -- host wall-clock progress report, not simulated time
            result = module.run(scale, runner=runner)
            path = os.path.join(outdir, f"{name}.txt")
            with open(path, "w") as fh:
                fh.write(result.table() + "\n")
            breakdown = result.breakdown_table()
            if breakdown:
                breakdown_path = os.path.join(outdir, f"{name}_breakdown.txt")
                with open(breakdown_path, "w") as fh:
                    fh.write(breakdown + "\n")
            # simlint: disable-next=DET002 -- host wall-clock progress report, not simulated time
            print(f"{name} -> {path} ({time.time() - started:.0f}s)")
        print(
            f"simulations: {runner.simulations_run} run, "
            f"{runner.simulations_cached} from cache"
            + (f"; {runner.cache.stats()}" if runner.cache else "")
        )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_all", description="regenerate every table and figure"
    )
    parser.add_argument("scale", nargs="?", default="quick",
                        choices=["quick", "smoke", "full"])
    parser.add_argument("outdir", nargs="?", default="results")
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--seeds", type=_positive_int, default=1,
                        help="replicates per point (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the result cache")
    return parser


def main(argv) -> int:
    # Pre-argparse interface printed its own error; keep that contract.
    factory = {"quick": Scale.quick, "smoke": Scale.smoke, "full": Scale.full}
    if len(argv) > 1 and argv[1] not in factory and not argv[1].startswith("-"):
        print(f"unknown scale {argv[1]!r}; use quick|smoke|full")
        return 2
    args = build_parser().parse_args(argv[1:])
    run_all(
        factory[args.scale](),
        args.outdir,
        jobs=args.jobs,
        seeds=args.seeds,
        use_cache=not args.no_cache,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv))
