"""Protocol shootout -- 2PL vs MVCC vs DGCC under both couplings.

Not a figure of the paper: the paper evaluates strict two-phase
locking only.  This experiment runs the two modern concurrency-control
protocols (Hekaton-style multi-version optimistic CC and
dependency-graph batched execution) through the paper's coupling
harnesses and reports response times with the full response-time
decomposition, so the cost-shift between the protocols is visible
phase by phase:

* **2PL** pays lock waits (``lock_local``/``lock_global``) and, under
  GEM, synchronous entry accesses (``gem``);
* **MVCC** trades lock waits for validation work inside ``commit`` and
  restart work after validation failures (aborts never hold locks);
* **DGCC** removes conflicts entirely but pays the epoch admission
  delay and layer barriers, both visible as ``lock_global`` waits.

All runs use NOFORCE and affinity routing (the paper's preferred
configuration) at the standard buffer size.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, Scale, sweep_all
from repro.system.config import SystemConfig
from repro.system.parallel import SweepRunner

__all__ = ["run", "PROTOCOLS"]

PROTOCOLS: Tuple[str, ...] = ("2pl", "mvcc", "dgcc")


def run(
    scale: Scale,
    protocols: Sequence[str] = PROTOCOLS,
    runner: Optional[SweepRunner] = None,
) -> ExperimentResult:
    specs = []
    for coupling in ("gem", "pcl"):
        for protocol in protocols:
            config = SystemConfig(
                coupling=coupling,
                protocol=protocol,
                routing="affinity",
                update_strategy="noforce",
                warmup_time=scale.warmup_time,
                measure_time=scale.measure_time,
                collect_breakdown=True,
            )
            specs.append((f"{coupling}/{protocol}", config))
    series = sweep_all(specs, scale.node_counts, runner, label="fig_shootout")
    return ExperimentResult(
        "Shootout",
        "CC protocol shootout (2PL vs MVCC vs DGCC)",
        series,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run(Scale.quick())
    print(result.table())
    print()
    print(result.breakdown_table())
