"""Three coupling regimes -- GEM vs PCL vs RDMA disaggregation.

Not a figure of the paper: the paper compares the close coupling (GEM)
against the loosely coupled primary-copy system (PCL) only.  This
experiment adds the third regime that post-dates the paper -- RDMA-style
memory disaggregation, where lock words and committed pages live in a
passive memory pool reached by one-sided verbs -- and runs all three
regimes through every concurrency-control protocol on the paper's
debit-credit workload (fig 4.5 flavour: affinity routing, NOFORCE,
buffer 200) plus a trace-workload row (fig 4.7 flavour) under 2PL.

Expected shape: RDMA tracks GEM closely at small N -- a remote CAS
(~3 us) replaces the synchronous GEM entry instructions, and the pool
plays the page-owner role without a liveness-coupled owner node -- but
the per-verb CPU cost and fabric queueing grow with contention, so the
GEM/RDMA gap widens where lock traffic is hottest (DGCC, which batches
its pool accesses per epoch, is the least sensitive).  PCL stays the
outlier under random-routing-like stress while matching both central
regimes under affinity routing, exactly as in fig 4.5.

The response-time decomposition gains an ``rdma`` component (time spent
issuing one-sided verbs on the acquire path); components still sum to
the mean response time exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, Scale, sweep_all
from repro.experiments.fig47 import trace_config
from repro.system.config import SystemConfig
from repro.system.parallel import SweepRunner

__all__ = ["run", "COUPLINGS", "PROTOCOLS"]

COUPLINGS: Tuple[str, ...] = ("gem", "pcl", "rdma")
PROTOCOLS: Tuple[str, ...] = ("2pl", "mvcc", "dgcc")


def run(
    scale: Scale,
    couplings: Sequence[str] = COUPLINGS,
    protocols: Sequence[str] = PROTOCOLS,
    runner: Optional[SweepRunner] = None,
    include_trace: bool = True,
) -> ExperimentResult:
    specs = []
    for coupling in couplings:
        for protocol in protocols:
            config = SystemConfig(
                coupling=coupling,
                protocol=protocol,
                routing="affinity",
                update_strategy="noforce",
                buffer_pages_per_node=200,
                warmup_time=scale.warmup_time,
                measure_time=scale.measure_time,
                collect_breakdown=True,
            )
            specs.append((f"{coupling}/{protocol}", config))
    if include_trace:
        for coupling in couplings:
            config = trace_config(coupling, "affinity", scale)
            specs.append((f"{coupling}/trace", config))
    node_counts = [n for n in scale.node_counts if n <= 8]
    if not node_counts:
        node_counts = [1, 2]
    series = sweep_all(specs, node_counts, runner, label="fig_regimes")
    return ExperimentResult(
        "Regimes",
        "coupling regimes (GEM vs PCL vs RDMA disaggregation)",
        series,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run(Scale.quick())
    print(result.table())
    print()
    print(result.breakdown_table())
