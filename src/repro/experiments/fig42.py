"""Fig. 4.2 -- Influence of buffer size (random routing, GEM locking).

Compares buffer sizes 200 and 1000 pages per node under random routing
for FORCE and NOFORCE.

Expected shape (section 4.3): the larger buffer helps most in the
central case (it holds all BRANCH/TELLER pages); in the distributed
configurations its benefit shrinks with more nodes because replicated
caching causes even more invalidations, and NOFORCE benefits more than
FORCE (misses turn into fast page requests instead of disk reads).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, Scale, sweep_all
from repro.system.config import SystemConfig
from repro.system.parallel import SweepRunner

__all__ = ["run"]


def run(scale: Scale, runner: Optional[SweepRunner] = None) -> ExperimentResult:
    specs = []
    for buffer_pages in (200, 1000):
        for update in ("noforce", "force"):
            config = SystemConfig(
                coupling="gem",
                routing="random",
                update_strategy=update,
                buffer_pages_per_node=buffer_pages,
                warmup_time=scale.warmup_time,
                measure_time=scale.measure_time,
            )
            specs.append((f"{update.upper()}/buf{buffer_pages}", config))
    series = sweep_all(specs, scale.node_counts, runner, label="fig42")
    return ExperimentResult(
        "Fig 4.2",
        "buffer size influence, random routing, GEM locking",
        series,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(Scale.quick()).table())
