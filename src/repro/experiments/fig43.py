"""Fig. 4.3 -- Influence of database allocation (buffer size 1000).

Allocates the hot BRANCH/TELLER partition either to disks or resident
in GEM, for both routings; panel (a) NOFORCE, panel (b) FORCE.

Expected shape (section 4.4): for NOFORCE the GEM allocation changes
almost nothing (misses are already served by fast page requests or do
not occur); for FORCE it improves response times substantially --
especially with random routing, which then performs almost like
affinity-based routing.
"""

from __future__ import annotations

from typing import Optional

from repro.db.schema import StorageKind
from repro.experiments.common import ExperimentResult, Scale, sweep_all
from repro.system.config import DebitCreditConfig, SystemConfig
from repro.system.parallel import SweepRunner

__all__ = ["run"]


def config_for(update, routing, storage, scale) -> SystemConfig:
    return SystemConfig(
        coupling="gem",
        routing=routing,
        update_strategy=update,
        buffer_pages_per_node=1000,
        debit_credit=DebitCreditConfig(branch_teller_storage=storage),
        warmup_time=scale.warmup_time,
        measure_time=scale.measure_time,
    )


def run(scale: Scale, runner: Optional[SweepRunner] = None) -> ExperimentResult:
    specs = []
    for update in ("noforce", "force"):
        for routing in ("affinity", "random"):
            for storage in (StorageKind.DISK, StorageKind.GEM):
                label = f"{update.upper()}/{routing}/{storage.value}"
                specs.append((label, config_for(update, routing, storage, scale)))
    series = sweep_all(specs, scale.node_counts, runner, label="fig43")
    return ExperimentResult(
        "Fig 4.3",
        "BRANCH/TELLER allocation: disk vs GEM (buffer 1000)",
        series,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(Scale.quick()).table())
