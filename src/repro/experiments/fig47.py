"""Fig. 4.7 -- PCL vs GEM locking for the real-life (trace) workload.

NOFORCE, 50 TPS per node, buffer 1000, nodes 1-8, PCL with the read
optimization (as in the paper).  Response times refer to an artificial
transaction performing the average number of database accesses.

Expected shape (section 4.6): close coupling outperforms loose
coupling for both routings, with the gap widening in the number of
nodes; affinity-routed close coupling can beat the central case
(aggregate buffer grows while the database size stays constant);
random routing deteriorates with N (replicated caching reduces buffer
effectiveness); PCL's locally processed lock share falls with N even
under affinity routing, and its CPU utilization is substantially
higher and more unbalanced.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, Scale, sweep_all
from repro.system.config import SystemConfig, TraceWorkloadConfig
from repro.system.parallel import SweepRunner

__all__ = ["run"]


def trace_config(coupling, routing, scale, protocol="2pl") -> SystemConfig:
    return SystemConfig(
        coupling=coupling,
        routing=routing,
        update_strategy="noforce",
        protocol=protocol,
        workload="trace",
        arrival_rate_per_node=50.0,
        buffer_pages_per_node=1000,
        pcl_read_optimization=(coupling == "pcl"),
        trace=TraceWorkloadConfig(scale=scale.trace_scale),
        warmup_time=scale.warmup_time,
        measure_time=scale.measure_time,
        collect_breakdown=True,
    )


def run(
    scale: Scale,
    runner: Optional[SweepRunner] = None,
    protocol: str = "2pl",
) -> ExperimentResult:
    node_counts = [n for n in scale.node_counts if n <= 8]
    if not node_counts:
        node_counts = [1, 2]
    specs = []
    for coupling in ("gem", "pcl"):
        for routing in ("affinity", "random"):
            config = trace_config(coupling, routing, scale, protocol=protocol)
            label = f"{coupling}/{routing}"
            if protocol != "2pl":
                label += f"/{protocol}"
            specs.append((label, config))
    series = sweep_all(specs, node_counts, runner, label="fig47")
    return ExperimentResult(
        "Fig 4.7",
        "PCL vs GEM locking, real-life workload (50 TPS, buffer 1000, NOFORCE)",
        series,
        metric_label="artificial-txn response time [ms]",
        metric=lambda r: r.mean_response_time_artificial * 1000.0,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run(Scale.quick())
    print(result.table())
    for s in result.series:
        if s.label.startswith("pcl"):
            shares = [round(r.local_lock_share, 2) for _n, r in s.points]
            print(f"local lock share {s.label}: {shares}")
    print()
    print(result.breakdown_table())
