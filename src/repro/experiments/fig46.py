"""Fig. 4.6 -- Throughput per node for PCL and GEM locking.

For each configuration the per-node arrival rate is binary-searched
until the *maximum* node CPU utilization reaches 80 % (buffer 1000),
and the achieved transactions/second per node are reported.

Expected shape (section 4.5): affinity routing sustains a nearly flat
(linear-in-N) throughput per node for both couplings; with random
routing PCL's message overhead costs about 15 % of the achievable
throughput compared to GEM locking, and FORCE sustains higher rates
than NOFORCE under random routing (a disk I/O costs less CPU than a
page request/transfer).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, Scale, Series
from repro.system.config import SystemConfig
from repro.system.parallel import SweepRunner
from repro.system.runner import find_throughput_at_utilization

__all__ = ["run"]


def run(scale: Scale, runner: Optional[SweepRunner] = None) -> ExperimentResult:
    series = []
    for coupling in ("gem", "pcl"):
        for routing in ("affinity", "random"):
            for update in ("noforce", "force"):
                current = Series(f"{coupling}/{routing}/{update.upper()}")
                for num_nodes in scale.node_counts:
                    config = SystemConfig(
                        num_nodes=num_nodes,
                        coupling=coupling,
                        routing=routing,
                        update_strategy=update,
                        buffer_pages_per_node=1000,
                        warmup_time=scale.warmup_time,
                        measure_time=scale.measure_time,
                    )
                    # The bisection itself is sequential, but its
                    # opening bracket probes fan out over the runner.
                    result = find_throughput_at_utilization(
                        config,
                        target_utilization=0.80,
                        max_iterations=scale.throughput_iterations,
                        rate_bounds=(60.0, 220.0),
                        runner=runner,
                    )
                    current.points.append((num_nodes, result))
                series.append(current)
    return ExperimentResult(
        "Fig 4.6",
        "throughput per node at 80% CPU utilization (buffer 1000)",
        series,
        metric_label="TPS per node",
        metric=lambda r: r.throughput_per_node,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(Scale.quick()).table())
