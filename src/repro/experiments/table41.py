"""Table 4.1 -- parameter settings and their single-node anchor run.

Table 4.1 is a configuration table, not a measurement; this driver
validates that the implemented defaults reproduce it and runs the
central (one node, affinity, NOFORCE) configuration as an anchor,
checking the two quantitative facts the paper derives directly from
the parameters: CPU utilization of at least 62.5 % at 100 TPS, and the
HISTORY hit ratio of 95 % from blocking factor 20.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.common import Scale
from repro.system.config import SystemConfig
from repro.system.results import RunResult
from repro.system.runner import run_simulation

__all__ = ["parameter_rows", "run", "validate"]


def parameter_rows(config: SystemConfig) -> List[Tuple[str, str]]:
    """The rows of Table 4.1 as implemented."""
    dc = config.debit_credit
    return [
        ("number of nodes N", "1 - 10 (per experiment)"),
        ("arrival rate", f"{config.arrival_rate_per_node:.0f} TPS per node"),
        (
            "DB size (per 100 TPS)",
            f"BRANCH {dc.branches_per_node} (bf 1, clustered w. TELLER), "
            f"TELLER {dc.branches_per_node * dc.tellers_per_branch} (bf {dc.tellers_per_branch}), "
            f"ACCOUNT {dc.branches_per_node * dc.accounts_per_branch:,} "
            f"(bf {dc.account_blocking_factor}), HISTORY bf {dc.history_blocking_factor}",
        ),
        ("path length", f"{config.path_length(4):,.0f} instructions per transaction"),
        ("lock mode", "page locks for BRANCH/TELLER, ACCOUNT; no locks for HISTORY"),
        (
            "CPU capacity",
            f"per node: {config.cpus_per_node} processors of "
            f"{config.mips_per_cpu:.0f} MIPS each",
        ),
        ("DB buffer size", f"{config.buffer_pages_per_node} pages per node"),
        (
            "GEM parameters",
            f"{config.gem_servers} GEM server; "
            f"{config.gem_page_access_time * 1e6:.0f} us/page, "
            f"{config.gem_entry_access_time * 1e6:.0f} us/entry",
        ),
        (
            "communication",
            f"bandwidth {config.network_bandwidth / 1e6:.0f} MB/s; "
            f"{config.instructions_msg_short:.0f} instr per short send/receive, "
            f"{config.instructions_msg_long:.0f} per long",
        ),
        (
            "I/O overhead",
            f"{config.instructions_per_io:.0f} instr per page "
            f"(GEM: {config.instructions_per_gem_io:.0f})",
        ),
        (
            "avg. disk access time",
            f"{config.disk_time_db * 1000:.0f} ms DB disks; "
            f"{config.disk_time_log * 1000:.0f} ms log disks",
        ),
        (
            "other I/O delays",
            f"controller {config.controller_time * 1000:.0f} ms; "
            f"transfer {config.transfer_time * 1000:.1f} ms per page",
        ),
    ]


def run(scale: Scale, runner=None) -> RunResult:
    """The single-node anchor run with Table 4.1 defaults.

    ``runner`` (a :class:`~repro.system.parallel.SweepRunner`) is
    optional; when given, the anchor run goes through its cache.
    """
    config = SystemConfig(
        num_nodes=1,
        coupling="gem",
        routing="affinity",
        update_strategy="noforce",
        warmup_time=scale.warmup_time,
        measure_time=scale.measure_time,
    )
    if runner is not None:
        return runner.run(config, label="table41").primary
    return run_simulation(config)


def validate(result: RunResult) -> Dict[str, bool]:
    """Check the facts the paper derives from Table 4.1."""
    # Normalize CPU utilization to exactly 100 TPS per node: short
    # measurement windows make the achieved Poisson rate fluctuate.
    achieved = result.throughput_per_node or 1.0
    cpu_per_100tps = result.cpu_utilization_avg * 100.0 / achieved
    return {
        # 250k instructions at 40 MIPS and 100 TPS -> >= 62.5 %.
        "cpu_utilization_at_least_62.5%": cpu_per_100tps >= 0.60,
        "history_hit_ratio_95%": abs(result.hit_ratios["HISTORY"] - 0.95) < 0.02,
        "three_page_accesses_per_txn": abs(result.mean_accesses_per_txn - 3.0) < 0.15,
        "bt_hit_ratio_about_71%": abs(result.hit_ratios["BRANCH_TELLER"] - 0.71) < 0.06,
    }


if __name__ == "__main__":  # pragma: no cover
    config = SystemConfig()
    width = max(len(k) for k, _ in parameter_rows(config))
    for key, value in parameter_rows(config):
        print(f"{key:<{width}}  {value}")
    result = run(Scale.quick())
    print()
    print(result.summary())
    for check, ok in validate(result).items():
        print(f"  {'PASS' if ok else 'FAIL'}  {check}")
