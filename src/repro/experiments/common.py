"""Shared infrastructure for the experiment drivers."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.system.config import SystemConfig
from repro.system.parallel import ReplicatedResult, SweepRunner
from repro.system.results import RunResult
from repro.system.runner import run_simulation

__all__ = [
    "Scale",
    "Series",
    "ExperimentResult",
    "sweep",
    "sweep_all",
    "format_table",
]


@dataclasses.dataclass
class Scale:
    """Run-size knobs shared by all experiments."""

    #: Node counts to sweep (the paper uses 1-10; 1-8 for the trace).
    node_counts: Sequence[int]
    warmup_time: float
    measure_time: float
    #: Shrink factor for the synthetic trace (1.0 = paper size).
    trace_scale: float
    #: Maximum binary-search iterations for the throughput experiment.
    throughput_iterations: int

    @classmethod
    def quick(cls) -> "Scale":
        """CI-sized runs: the shapes hold, absolute noise is higher."""
        return cls(
            node_counts=(1, 2, 4, 6, 8, 10),
            warmup_time=1.5,
            measure_time=5.0,
            trace_scale=0.12,
            throughput_iterations=5,
        )

    @classmethod
    def smoke(cls) -> "Scale":
        """Minimal runs for tests of the harness itself."""
        return cls(
            node_counts=(1, 2),
            warmup_time=0.5,
            measure_time=1.5,
            trace_scale=0.04,
            throughput_iterations=2,
        )

    @classmethod
    def full(cls) -> "Scale":
        """Paper-sized runs (minutes of wall-clock time)."""
        return cls(
            node_counts=tuple(range(1, 11)),
            warmup_time=4.0,
            measure_time=20.0,
            trace_scale=1.0,
            throughput_iterations=10,
        )


#: A point's result: a plain run or a multi-seed aggregate.
PointResult = Union[RunResult, ReplicatedResult]


@dataclasses.dataclass
class Series:
    """One curve of a figure: a label and one result per node count."""

    label: str
    points: List[Tuple[int, PointResult]] = dataclasses.field(default_factory=list)

    def values(self, metric: Callable[[RunResult], float]) -> List[float]:
        return [metric(result) for _n, result in self.points]

    def value_at(self, num_nodes: int, metric: Callable[[RunResult], float]) -> float:
        for n, result in self.points:
            if n == num_nodes:
                return metric(result)
        raise KeyError(f"no point at N={num_nodes}")


@dataclasses.dataclass
class ExperimentResult:
    """All series of one figure plus rendering helpers."""

    name: str
    title: str
    series: List[Series]
    metric_label: str = "response time [ms]"
    metric: Callable[[RunResult], float] = lambda r: r.response_time_ms

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(label)

    def _replicated(self) -> bool:
        """True when any point carries more than one replicate."""
        return any(
            isinstance(result, ReplicatedResult) and result.n_replicates > 1
            for series in self.series
            for _n, result in series.points
        )

    def _cell(self, result: PointResult) -> Union[float, str]:
        if isinstance(result, ReplicatedResult) and result.n_replicates > 1:
            stats = result.stat(self.metric)
            return f"{stats.mean:.1f}±{stats.ci95:.1f}"
        return self.metric(result)

    def table(self) -> str:
        node_counts = [n for n, _ in self.series[0].points]
        title = f"{self.name}: {self.title} ({self.metric_label})"
        if self._replicated():
            n = max(
                result.n_replicates
                for series in self.series
                for _n, result in series.points
                if isinstance(result, ReplicatedResult)
            )
            title += f" [mean ± 95% CI over {n} seeds]"
        return format_table(
            title,
            node_counts,
            {
                s.label: [self._cell(result) for _n, result in s.points]
                for s in self.series
            },
        )

    def breakdown_table(self, num_nodes: Optional[int] = None) -> str:
        """Response-time decomposition at one node count (default: the
        largest swept), one row per series, one column per phase in ms.

        Returns "" when no series carries a breakdown (collection off).
        """
        from repro.obs import phases

        if not self.series or not self.series[0].points:
            return ""
        chosen = num_nodes
        if chosen is None:
            chosen = max(n for n, _r in self.series[0].points)
        rows: List[Tuple[str, Dict[str, float]]] = []
        for series in self.series:
            for n, result in series.points:
                if n != chosen:
                    continue
                breakdown = getattr(result, "breakdown", None)
                if breakdown:
                    rows.append((series.label, breakdown))
        if not rows:
            return ""
        columns = phases.phase_order(
            p for _label, breakdown in rows for p in breakdown
        )
        width = max(12, max(len(label) for label, _b in rows) + 2)
        phase_width = max(len(p) for p in columns) + 2
        title = (
            f"{self.name}: response-time breakdown at N={chosen} "
            "[ms per committed txn]"
        )
        header = "series".ljust(width) + "".join(
            p.rjust(phase_width) for p in columns
        ) + "total".rjust(phase_width)
        lines = [title, "=" * len(header), header, "-" * len(header)]
        for label, breakdown in rows:
            cells = "".join(
                f"{breakdown.get(p, 0.0) * 1e3:>{phase_width}.2f}"
                for p in columns
            )
            total = sum(breakdown.values()) * 1e3
            lines.append(label.ljust(width) + cells + f"{total:>{phase_width}.2f}")
        return "\n".join(lines)


def sweep(
    base_config: SystemConfig,
    node_counts: Sequence[int],
    label: str,
    runner: Union[SweepRunner, Callable[[SystemConfig], RunResult], None] = None,
) -> Series:
    """Run ``base_config`` for each node count.

    ``runner`` may be a :class:`SweepRunner` (parallel, replicated,
    cached execution) or any ``config -> RunResult`` callable (the
    pre-parallel interface, kept for tests and ad-hoc drivers).
    """
    configs = [base_config.replace(num_nodes=n) for n in node_counts]
    if runner is None:
        runner = run_simulation
    if isinstance(runner, SweepRunner):
        results: Sequence[PointResult] = runner.run_many(configs, label=label)
    else:
        results = [runner(config) for config in configs]
    return Series(label, list(zip(node_counts, results)))


def sweep_all(
    specs: Sequence[Tuple[str, SystemConfig]],
    node_counts: Sequence[int],
    runner: Optional[SweepRunner] = None,
    label: str = "",
) -> List[Series]:
    """Run a whole figure's ``(label, config)`` grid as one batch.

    Submitting every series' node counts together keeps a parallel
    runner's worker pool full across the entire figure instead of
    draining it at each series boundary.  Results come back in spec
    order, one :class:`Series` per spec.
    """
    runner = runner or SweepRunner()
    configs = [
        config.replace(num_nodes=n)
        for _label, config in specs
        for n in node_counts
    ]
    flat = runner.run_many(configs, label=label)
    series = []
    stride = len(node_counts)
    for index, (series_label, _config) in enumerate(specs):
        chunk = flat[index * stride:(index + 1) * stride]
        series.append(Series(series_label, list(zip(node_counts, chunk))))
    return series


def format_table(
    title: str,
    node_counts: Sequence[int],
    columns: Dict[str, List[Union[float, str]]],
) -> str:
    """Render a figure as an aligned text table (rows = #nodes).

    Cells may be floats (rendered ``%.1f``) or pre-formatted strings
    (e.g. ``"72.1±3.4"`` for replicated points).
    """
    labels = list(columns)
    width = max(12, max(len(label) for label in labels) + 2)

    def cell(value: Union[float, str]) -> str:
        if isinstance(value, str):
            return value.rjust(width)
        return f"{value:>{width}.1f}"

    header = "#nodes".rjust(8) + "".join(label.rjust(width) for label in labels)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row_index, num_nodes in enumerate(node_counts):
        cells = "".join(cell(columns[label][row_index]) for label in labels)
        lines.append(f"{num_nodes:>8d}" + cells)
    return "\n".join(lines)
