"""Shared infrastructure for the experiment drivers."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.system.config import SystemConfig
from repro.system.results import RunResult
from repro.system.runner import run_simulation

__all__ = ["Scale", "Series", "ExperimentResult", "sweep", "format_table"]


@dataclasses.dataclass
class Scale:
    """Run-size knobs shared by all experiments."""

    #: Node counts to sweep (the paper uses 1-10; 1-8 for the trace).
    node_counts: Sequence[int]
    warmup_time: float
    measure_time: float
    #: Shrink factor for the synthetic trace (1.0 = paper size).
    trace_scale: float
    #: Maximum binary-search iterations for the throughput experiment.
    throughput_iterations: int

    @classmethod
    def quick(cls) -> "Scale":
        """CI-sized runs: the shapes hold, absolute noise is higher."""
        return cls(
            node_counts=(1, 2, 4, 6, 8, 10),
            warmup_time=1.5,
            measure_time=5.0,
            trace_scale=0.12,
            throughput_iterations=5,
        )

    @classmethod
    def smoke(cls) -> "Scale":
        """Minimal runs for tests of the harness itself."""
        return cls(
            node_counts=(1, 2),
            warmup_time=0.5,
            measure_time=1.5,
            trace_scale=0.04,
            throughput_iterations=2,
        )

    @classmethod
    def full(cls) -> "Scale":
        """Paper-sized runs (minutes of wall-clock time)."""
        return cls(
            node_counts=tuple(range(1, 11)),
            warmup_time=4.0,
            measure_time=20.0,
            trace_scale=1.0,
            throughput_iterations=10,
        )


@dataclasses.dataclass
class Series:
    """One curve of a figure: a label and one result per node count."""

    label: str
    points: List[Tuple[int, RunResult]] = dataclasses.field(default_factory=list)

    def values(self, metric: Callable[[RunResult], float]) -> List[float]:
        return [metric(result) for _n, result in self.points]

    def value_at(self, num_nodes: int, metric: Callable[[RunResult], float]) -> float:
        for n, result in self.points:
            if n == num_nodes:
                return metric(result)
        raise KeyError(f"no point at N={num_nodes}")


@dataclasses.dataclass
class ExperimentResult:
    """All series of one figure plus rendering helpers."""

    name: str
    title: str
    series: List[Series]
    metric_label: str = "response time [ms]"
    metric: Callable[[RunResult], float] = lambda r: r.response_time_ms

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(label)

    def table(self) -> str:
        node_counts = [n for n, _ in self.series[0].points]
        return format_table(
            f"{self.name}: {self.title} ({self.metric_label})",
            node_counts,
            {s.label: s.values(self.metric) for s in self.series},
        )


def sweep(
    base_config: SystemConfig,
    node_counts: Sequence[int],
    label: str,
    runner: Callable[[SystemConfig], RunResult] = run_simulation,
) -> Series:
    """Run ``base_config`` for each node count."""
    series = Series(label)
    for num_nodes in node_counts:
        result = runner(base_config.replace(num_nodes=num_nodes))
        series.points.append((num_nodes, result))
    return series


def format_table(
    title: str, node_counts: Sequence[int], columns: Dict[str, List[float]]
) -> str:
    """Render a figure as an aligned text table (rows = #nodes)."""
    labels = list(columns)
    width = max(12, max(len(label) for label in labels) + 2)
    header = "#nodes".rjust(8) + "".join(label.rjust(width) for label in labels)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row_index, num_nodes in enumerate(node_counts):
        cells = "".join(
            f"{columns[label][row_index]:>{width}.1f}" for label in labels
        )
        lines.append(f"{num_nodes:>8d}" + cells)
    return "\n".join(lines)
