"""Fig. 4.1 -- Influence of workload allocation and update strategy.

Closely coupled configurations (GEM locking), buffer size 200, all
files on plain disks, 100 TPS per node.  Four curves: {random,
affinity} routing x {FORCE, NOFORCE}, response time over 1-10 nodes.

Expected shape (section 4.2): affinity curves stay flat despite the
linear throughput growth; random curves rise with the number of nodes
(buffer invalidations shrink the BRANCH/TELLER hit ratio from ~71 %
centrally to ~7 % at ten nodes); FORCE lies above NOFORCE, and the
FORCE/NOFORCE gap widens under random routing.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, Scale, sweep_all
from repro.system.config import SystemConfig
from repro.system.parallel import SweepRunner

__all__ = ["run", "base_config"]


def base_config() -> SystemConfig:
    return SystemConfig(
        coupling="gem",
        buffer_pages_per_node=200,
        arrival_rate_per_node=100.0,
        collect_breakdown=True,
    )


def run(
    scale: Scale,
    runner: Optional[SweepRunner] = None,
    protocol: str = "2pl",
) -> ExperimentResult:
    specs = []
    for routing in ("affinity", "random"):
        for update in ("noforce", "force"):
            config = base_config().replace(
                routing=routing,
                update_strategy=update,
                protocol=protocol,
                warmup_time=scale.warmup_time,
                measure_time=scale.measure_time,
            )
            label = f"{routing}/{update.upper()}"
            if protocol != "2pl":
                label += f"/{protocol}"
            specs.append((label, config))
    series = sweep_all(specs, scale.node_counts, runner, label="fig41")
    return ExperimentResult(
        "Fig 4.1",
        "workload allocation and update strategy, GEM locking, buffer 200",
        series,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run(Scale.quick())
    print(result.table())
    bt_hits = {
        s.label: [round(r.hit_ratios["BRANCH_TELLER"], 2) for _n, r in s.points]
        for s in result.series
    }
    print("\nBRANCH/TELLER hit ratios:", bt_hits)
    print()
    print(result.breakdown_table())
