"""Fig. 4.4 -- Use of disk caches for the BRANCH/TELLER partition.

FORCE, buffer size 1000.  The hot partition sits on plain disks, disks
with a volatile cache, disks with a non-volatile cache, or in GEM, for
both routings.  The cache is sized to hold the whole partition, as in
the paper ("all BRANCH/TELLER pages could be buffered in the shared
disk cache").

Expected shape (section 4.4): the non-volatile cache achieves almost
the same response times as the GEM allocation (reads hit the shared
cache, force-writes are absorbed); the volatile cache only removes the
read delays, which helps random routing but does nothing for affinity
routing (no misses at buffer 1000).
"""

from __future__ import annotations

from typing import Optional

from repro.db.schema import StorageKind
from repro.experiments.common import ExperimentResult, Scale, sweep_all
from repro.system.config import DebitCreditConfig, SystemConfig
from repro.system.parallel import SweepRunner

__all__ = ["run"]

STORAGE_KINDS = (
    StorageKind.DISK,
    StorageKind.DISK_VOLATILE_CACHE,
    StorageKind.DISK_NONVOLATILE_CACHE,
    StorageKind.GEM,
)


def run(scale: Scale, runner: Optional[SweepRunner] = None) -> ExperimentResult:
    specs = []
    for routing in ("affinity", "random"):
        for storage in STORAGE_KINDS:
            config = SystemConfig(
                coupling="gem",
                routing=routing,
                update_strategy="force",
                buffer_pages_per_node=1000,
                debit_credit=DebitCreditConfig(branch_teller_storage=storage),
                warmup_time=scale.warmup_time,
                measure_time=scale.measure_time,
            )
            specs.append((f"{routing}/{storage.value}", config))
    series = sweep_all(specs, scale.node_counts, runner, label="fig44")
    return ExperimentResult(
        "Fig 4.4",
        "disk caches for BRANCH/TELLER (FORCE, buffer 1000)",
        series,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(Scale.quick()).table())
