"""Experiment drivers regenerating the paper's evaluation section.

One module per figure:

========  ==================================================================
Module    Paper content
========  ==================================================================
fig41     Influence of workload allocation and update strategy (GEM locking)
fig42     Influence of buffer size (random routing)
fig43     Influence of database allocation (BRANCH/TELLER on disk vs GEM)
fig44     Use of disk caches for the BRANCH/TELLER partition (FORCE)
fig45     Primary copy locking vs GEM locking (response times)
fig46     Throughput per node at 80 % CPU utilization
fig47     PCL vs GEM locking for the real-life (trace) workload
table41   Parameter-setting validation (Table 4.1 single-node anchor run)
========  ==================================================================

Every driver exposes ``run(scale)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose ``table()``
renders the same rows/series the paper plots, and is runnable as a
script (``python -m repro.experiments.fig41``).  Scales: ``quick()``
for CI-sized runs, ``full()`` for paper-sized runs.
"""

from repro.experiments.common import ExperimentResult, Scale, Series

__all__ = ["ExperimentResult", "Scale", "Series"]
