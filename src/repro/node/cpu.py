"""CPU server pool of a processing node.

A node has ``num_cpus`` identical CPUs of ``mips`` million instructions
per second each, modelled as a multi-server FCFS resource.  All CPU
demand in the model -- transaction path length, message send/receive
overhead, I/O overhead -- is expressed in instructions and converted to
service time here.

Synchronous GEM accesses keep the CPU busy for the complete access
(section 2); model code uses :meth:`request`/:meth:`release` to hold a
CPU unit across such a compound operation.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource
from repro.sim.rng import Stream

__all__ = ["CpuPool"]


class CpuPool:
    """The CPUs of one processing node."""

    def __init__(
        self,
        sim: Simulator,
        num_cpus: int,
        mips: float,
        stream: Stream,
        name: str = "cpu",
    ) -> None:
        if num_cpus < 1:
            raise ValueError("num_cpus must be >= 1")
        if mips <= 0:
            raise ValueError("mips must be positive")
        self.sim = sim
        self.speed = mips * 1e6  # instructions per second
        self.stream = stream
        self.resource = Resource(sim, capacity=num_cpus, name=name)
        self.instructions_executed = 0.0

    def service_time(self, instructions: float) -> float:
        return instructions / self.speed

    def consume(self, instructions: float) -> Iterator[Event]:
        """Execute a fixed number of instructions on one CPU.

        Returns the resource's acquire generator directly rather than
        wrapping it: every caller delegates with ``yield from``, and the
        extra generator frame would be resumed on every event.  The
        zero-work case returns an empty iterator, which ``yield from``
        exhausts without ever suspending (so no value is ever sent into
        the non-generator iterator).
        """
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        if instructions == 0:
            return iter(())
        self.instructions_executed += instructions
        return self.resource.acquire(instructions / self.speed)

    def consume_exp(self, mean_instructions: float) -> Iterator[Event]:
        """Execute an exponentially distributed number of instructions."""
        instructions = self.stream.exponential(mean_instructions)
        self.instructions_executed += instructions
        if instructions:
            return self.resource.acquire(instructions / self.speed)
        return iter(())

    # -- compound operations (synchronous GEM access) -------------------

    def request(self) -> Event:
        """Acquire one CPU unit; pair with :meth:`release`."""
        return self.resource.request()

    def grab(self) -> Iterator[Event]:
        """Wait for one CPU unit, cancel-safe; pair with :meth:`release`."""
        return self.resource.grab()

    def release(self) -> None:
        self.resource.release()

    def busy_work(self, instructions: float) -> Event:
        """Timeout for ``instructions`` of work on an *already held* CPU."""
        self.instructions_executed += instructions
        return self.sim.timeout(self.service_time(instructions))

    # -- statistics -----------------------------------------------------

    def utilization(self) -> float:
        return self.resource.utilization()

    def busy_time(self, now: Optional[float] = None) -> float:
        """Accumulated busy CPU-seconds since the last reset."""
        return self.resource.busy_time(now)

    def reset_stats(self) -> None:
        self.resource.reset_stats()
        self.instructions_executed = 0.0
