"""Main-memory database buffer with LRU replacement and logging.

Implements section 3.2's buffer manager:

* LRU page replacement over a fixed number of frames;
* detection of **buffer invalidations** by comparing the cached page
  sequence number with the one supplied by concurrency control;
* page fetch from the right source on a miss: permanent storage, the
  owning node's buffer (GEM locking + NOFORCE), or a copy that arrived
  with the lock grant (PCL + NOFORCE);
* update propagation: FORCE writes all modified pages at commit;
  NOFORCE keeps committed dirty pages in the buffer and writes them
  back on eviction (notifying the protocol so ownership information is
  kept consistent);
* logging: one log page per update transaction at commit (phase 1).

Pages modified by *active* transactions are pinned (no-steal policy),
so storage never sees uncommitted versions; see DESIGN.md.

Every fetch verifies the obtained version against the version promised
by concurrency control and against the global ledger -- any protocol
bug surfaces as a :class:`~repro.db.pages.CoherencyError` instead of a
silently wrong result.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterator,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from repro.cc.base import LockGrant, PageSource
from repro.db.pages import CoherencyError, PageId, VersionLedger
from repro.errors import BufferFullError
from repro.obs import phases
from repro.sim.engine import Event
from repro.workload.transaction import PageAccess, Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.node import Node

__all__ = ["BufferManager", "PartitionBufferStats"]


class _Frame:
    __slots__ = ("version", "dirty", "pins", "protects", "evicting", "prev_dirty")

    def __init__(self, version: int, dirty: bool) -> None:
        self.version = version
        self.dirty = dirty
        self.pins = 0
        #: Protection against *capacity* eviction while a lock request
        #: naming this copy's version is in flight (a stale copy may
        #: still be dropped on invalidation).
        self.protects = 0
        self.evicting = False
        #: Dirty state before the active transaction's modification;
        #: restored on rollback (the pre-image may be this node's
        #: committed dirty copy that must not be lost).
        self.prev_dirty = False


class PartitionBufferStats:
    """Hit/miss/invalidation counters for one partition at one node."""

    __slots__ = ("accesses", "hits", "misses", "invalidations")

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0


class BufferManager:
    """The database buffer of one processing node."""

    #: Maximum concurrent asynchronous write-backs per node.
    _MAX_WRITEBACKS = 8

    def __init__(self, node: "Node", capacity: int, ledger: VersionLedger) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.node = node
        self.sim = node.sim
        self.capacity = capacity
        self.ledger = ledger
        self._frames: "OrderedDict[PageId, _Frame]" = OrderedDict()
        self.partition_stats: Dict[int, PartitionBufferStats] = {}
        self.evictions = 0
        self.eviction_writes = 0
        self.writeback_writes = 0
        self.force_writes = 0
        self.log_writes = 0
        # Asynchronous write-back daemon: keeps the LRU tail clean so
        # that replacement rarely has to write a dirty victim on the
        # critical path of a transaction (like a DBMS's database
        # writer).  It only acts under replacement pressure -- NOFORCE
        # assumes fuzzy checkpointing with negligible overhead, so hot
        # dirty pages are not rewritten gratuitously.
        self._writer_signal = None
        self._outstanding_writebacks = 0
        self.sim.process(self._writeback_daemon(), name=f"writeback-{node.node_id}")

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    def cached_version(self, page: PageId) -> Optional[int]:
        frame = self._frames.get(page)
        return frame.version if frame is not None else None

    def has_current_version(self, page: PageId, seqno: int) -> bool:
        frame = self._frames.get(page)
        return frame is not None and frame.version == seqno

    def has_current_dirty(self, page: PageId, seqno: int) -> bool:
        """True if this buffer holds the current version *and* the
        permanent database is stale (the copy is dirty).  Only then
        must a PCL grant carry the page -- otherwise the requester can
        read the permanent database."""
        frame = self._frames.get(page)
        return frame is not None and frame.version == seqno and frame.dirty

    def protect(self, page: PageId) -> bool:
        """Shield a cached copy from capacity eviction while a lock
        request naming its version is in flight.  Returns True if a
        frame was protected (pair with :meth:`unprotect`)."""
        frame = self._frames.get(page)
        if frame is None:
            return False
        frame.protects += 1
        return True

    def unprotect(self, page: PageId) -> None:
        frame = self._frames.get(page)
        if frame is not None and frame.protects > 0:
            frame.protects -= 1

    def drop_all(self) -> None:
        """Crash teardown: the node's volatile buffer content is lost.

        The fault manager snapshots redo-relevant dirty frames *before*
        calling this.  In-flight write-backs and evictions observe the
        frame vanishing (their ``self._frames.get(page) is frame``
        guards fail) and leave it dropped.
        """
        self._frames.clear()

    def dirty_frames(
        self, predicate: Optional[Callable[[PageId], bool]] = None
    ) -> List[Tuple[PageId, int]]:
        """Sorted ``(page, version)`` of dirty frames (fault recovery).

        ``predicate`` filters by page; pass None for all dirty frames.
        """
        return sorted(
            (page, frame.version)
            for page, frame in self._frames.items()
            if frame.dirty and (predicate is None or predicate(page))
        )

    def mark_clean(self, page: PageId, version: int) -> None:
        """Responsibility for writing ``page`` moved elsewhere (PCL:
        the modified page was shipped to its GLA node at commit)."""
        frame = self._frames.get(page)
        if frame is not None and frame.version == version:
            frame.dirty = False

    def invalidate_stale(self, page: PageId, current: int) -> None:
        """Drop a cached copy older than ``current`` (MVCC validation
        failure: the snapshot the copy served was superseded, and the
        restarted transaction must refetch rather than re-read the same
        stale frame forever).  Pinned or current frames are left alone.
        """
        frame = self._frames.get(page)
        if frame is not None and frame.version < current and not frame.pins:
            del self._frames[page]

    @property
    def _multiversion(self) -> bool:
        """Whether the attached protocol maintains version chains.

        Resolved late (the protocol is wired up after construction) and
        tolerant of protocol stand-ins that predate the attribute.
        """
        return bool(getattr(self.node.protocol, "multiversion", False))

    def _stats_for(self, partition_index: int) -> PartitionBufferStats:
        stats = self.partition_stats.get(partition_index)
        if stats is None:
            stats = PartitionBufferStats()
            self.partition_stats[partition_index] = stats
        return stats

    # -- the access path -----------------------------------------------------

    def access(
        self,
        txn: Transaction,
        page_access: PageAccess,
        grant: Optional[LockGrant],
    ) -> Iterator[Event]:
        """Bring the page into the buffer and apply the access.

        Buffer hits complete synchronously, so this is a plain function
        returning an empty iterator on the hit path (callers delegate
        with ``yield from``, which exhausts it without suspending); only
        a miss returns a real generator.  The synchronous prefix runs at
        call time, which under ``yield from`` is the same instant the
        generator body would have started.
        """
        page = page_access.page
        first_touch = page not in txn.touched_pages
        txn.touched_pages.add(page)
        stats = self._stats_for(page[0])
        if first_touch:
            stats.accesses += 1
        if not page_access.lockable:
            return self._access_unlocked(txn, page_access, stats, first_touch)
        expected = self._expected_version(txn, page, grant)
        frame = self._frames.get(page)
        if frame is not None:
            if frame.version == expected:
                if first_touch:
                    stats.hits += 1
                self._frames.move_to_end(page)
                if page_access.write:
                    self._apply_write(txn, page, expected)
                return iter(())
            if frame.version > expected:
                if not page_access.write and self._multiversion:
                    # Multi-version read: the frame holds a newer
                    # (possibly uncommitted, pinned) version; the
                    # version chain still serves the older committed
                    # version the grant promised -- a hit, no I/O.
                    if first_touch:
                        stats.hits += 1
                    self._frames.move_to_end(page)
                    return iter(())
                raise CoherencyError(
                    f"node {self.node.node_id} caches page {page} version "
                    f"{frame.version}, newer than promised {expected}"
                )
            # Buffer invalidation: cached copy is obsolete.
            stats.invalidations += 1
            stats.misses += 1
            self._drop_stale_frame(page, frame)
        elif first_touch:
            stats.misses += 1
        return self._access_miss(txn, page_access, expected, grant)

    def _access_miss(
        self,
        txn: Transaction,
        page_access: PageAccess,
        expected: int,
        grant: Optional[LockGrant],
    ) -> Generator[Event, Any, None]:
        # ``_fetch`` is inlined here: the miss path is the deepest
        # yield-from chain in the model (lifecycle -> buffer -> storage
        # -> device) and every removed level takes one frame walk off
        # every resume of the transaction.
        page = page_access.page
        with self.node.recorder.span(txn.txn_id, phases.IO):
            if grant is not None and grant.page_supplied:
                # Current version arrived with the lock grant
                # (PCL+NOFORCE); the transfer delay was part of the
                # grant message exchange.
                yield from self._insert(page, expected, dirty=False)
            else:
                version: Optional[int] = None
                if grant is not None and grant.source is PageSource.OWNER:
                    txn.page_requests += 1
                    version = yield from self.node.protocol.request_page_from_owner(
                        txn, page, grant
                    )
                    if version is not None and version != expected:
                        if (
                            version > expected
                            and not page_access.write
                            and self._multiversion
                        ):
                            # The owner moved ahead of the read
                            # snapshot; the chain serves the promised
                            # version from the shipped copy.
                            pass
                        else:
                            raise CoherencyError(
                                f"owner supplied page {page} version {version}, "
                                f"expected {expected}"
                            )
                    # On ``None`` the ownership lapsed (owner wrote the
                    # page out); fall through to a storage read, which
                    # is guaranteed current again.
                if version is None:
                    version = yield from self.node.storage.read(page, self.node.cpu)
                    if not page_access.write and self._multiversion:
                        # Multi-version read: storage versions only
                        # grow, so anything at or above the promised
                        # snapshot keeps that snapshot readable through
                        # the chain; below it is a genuine protocol bug.
                        if version < expected:
                            self.ledger.check_storage_current(page, expected)
                        version = max(version, expected)
                    else:
                        self.ledger.check_storage_current(page, expected)
                yield from self._insert(page, version, dirty=False)
        if page_access.write:
            self._apply_write(txn, page, expected)

    def _access_unlocked(
        self,
        txn: Transaction,
        page_access: PageAccess,
        stats: PartitionBufferStats,
        first_touch: bool,
    ) -> Generator[Event, Any, None]:
        """Access to a latch-protected partition (HISTORY).

        Such pages carry no version semantics: they are synchronized by
        latches outside page locking (and in the debit-credit model are
        node-private append pages), so any cached copy is current.
        """
        page = page_access.page
        frame = self._frames.get(page)
        if frame is not None:
            if first_touch:
                stats.hits += 1
            self._frames.move_to_end(page)
        else:
            if first_touch:
                stats.misses += 1
            with self.node.recorder.span(txn.txn_id, phases.IO):
                if not page_access.append:
                    yield from self.node.storage.read(page, self.node.cpu)
                # Appends allocate the fresh page directly in the buffer.
                yield from self._insert(page, 0, dirty=False)
            frame = self._frames.get(page)
        if page_access.write and page not in txn.modified_unlocked:
            txn.modified_unlocked.add(page)
            if frame is not None:
                frame.dirty = True
                frame.pins += 1

    def _expected_version(
        self, txn: Transaction, page: PageId, grant: Optional[LockGrant]
    ) -> int:
        if page in txn.modified:
            return txn.modified[page]
        if grant is None:
            raise RuntimeError("lockable access without a lock grant")
        return grant.seqno

    def _drop_stale_frame(self, page: PageId, frame: _Frame) -> None:
        # A stale frame may legitimately be dirty: this node was the
        # page owner, another node fetched the page, modified it and
        # took over ownership.  Dropping the old version is safe -- the
        # current version lives at the new owner (or on storage).  A
        # *pinned* stale frame however means an active local
        # modification without the X lock: a protocol bug.
        if frame.pins:
            raise CoherencyError(
                f"stale frame for page {page} at node {self.node.node_id} "
                "is pinned -- protocol bug"
            )
        if frame.evicting:
            # A write-back of the old version is in flight; the evictor
            # will notice the frame vanished and leave it dropped.
            pass
        del self._frames[page]

    def _apply_write(self, txn: Transaction, page: PageId, expected: int) -> None:
        frame = self._frames.get(page)
        if frame is None:
            raise RuntimeError(f"write to page {page} that is not buffered")
        if page in txn.modified:
            return  # version already advanced by this transaction
        new_version = expected + 1
        txn.modified[page] = new_version
        frame.prev_dirty = frame.dirty
        frame.version = new_version
        frame.dirty = True
        frame.pins += 1  # no-steal: pinned until commit/abort

    # -- frame insertion and replacement ------------------------------------

    def _insert(
        self, page: PageId, version: int, dirty: bool
    ) -> Generator[Event, Any, None]:
        existing = self._frames.get(page)
        if existing is not None:
            # A concurrent fetch raced us; keep the newest version.
            if version > existing.version:
                existing.version = version
                existing.dirty = existing.dirty or dirty
            self._frames.move_to_end(page)
            return
        yield from self._ensure_space()
        self._frames[page] = _Frame(version, dirty)

    def insert_received_page(
        self, page: PageId, version: int, dirty: bool
    ) -> Generator[Event, Any, None]:
        """Insert a page that arrived by message (GLA receiving a commit
        page transfer, or a page request response)."""
        yield from self._insert(page, version, dirty)

    # -- asynchronous write-back ------------------------------------------

    def _notify_writer(self) -> None:
        if self._writer_signal is not None and not self._writer_signal.triggered:
            self._writer_signal.succeed()

    def _writeback_daemon(self) -> Generator[Event, Any, None]:
        """Clean dirty frames near the LRU end, off the critical path.

        Runs up to ``_MAX_WRITEBACKS`` concurrent page writes so that
        the cleaning rate can match the dirty-page production rate of a
        loaded node.
        """
        scan_depth = max(16, self.capacity // 8)
        while True:
            started = False
            while self._outstanding_writebacks < self._MAX_WRITEBACKS:
                candidate = self._oldest_dirty_unpinned(scan_depth)
                if candidate is None:
                    break
                page, frame = candidate
                frame.evicting = True
                self._outstanding_writebacks += 1
                self.sim.process(
                    self._writeback_one(page, frame), name="writeback"
                )
                started = True
            if not started or self._outstanding_writebacks >= self._MAX_WRITEBACKS:
                self._writer_signal = self.sim.event()
                yield self._writer_signal
                self._writer_signal = None

    def _writeback_one(
        self, page: PageId, frame: _Frame
    ) -> Generator[Event, Any, None]:
        version = frame.version
        self.writeback_writes += 1
        try:
            yield from self.node.storage.write(page, version, self.node.cpu)
        finally:
            frame.evicting = False
            self._outstanding_writebacks -= 1
        current = self._frames.get(page)
        if current is frame and frame.version == version:
            frame.dirty = False
            if self.node.database.by_index(page[0]).lockable:
                yield from self.node.protocol.page_written_back(
                    self.node.node_id, page, version
                )
        self._notify_writer()

    def _oldest_dirty_unpinned(
        self, scan_depth: int
    ) -> Optional[Tuple[PageId, _Frame]]:
        """First dirty, unpinned frame within the oldest LRU region.

        Returns None when the buffer is not full (no replacement
        pressure) or the tail is already clean.
        """
        if len(self._frames) < self.capacity:
            return None
        for index, (page, frame) in enumerate(self._frames.items()):
            if index >= scan_depth:
                return None
            if (
                frame.dirty
                and not frame.pins
                and not frame.protects
                and not frame.evicting
            ):
                return page, frame
        return None

    def _ensure_space(self) -> Generator[Event, Any, None]:
        while len(self._frames) >= self.capacity:
            self._notify_writer()
            victim_page, victim = self._choose_victim()
            if victim.dirty:
                victim.evicting = True
                version = victim.version
                self.eviction_writes += 1
                yield from self.node.storage.write(victim_page, version, self.node.cpu)
                current = self._frames.get(victim_page)
                if current is not victim or victim.version != version or victim.pins:
                    # The frame was touched/re-dirtied during the write;
                    # leave it cached, its newer version is still owned.
                    victim.evicting = False
                    continue
                victim.evicting = False
                del self._frames[victim_page]
                self.evictions += 1
                if self.node.database.by_index(victim_page[0]).lockable:
                    yield from self.node.protocol.page_written_back(
                        self.node.node_id, victim_page, version
                    )
            else:
                del self._frames[victim_page]
                self.evictions += 1

    def _choose_victim(self) -> Tuple[PageId, _Frame]:
        # Prefer clean victims (the write-back daemon keeps the tail
        # clean); fall back to a synchronous dirty write-out.
        fallback = None
        for page, frame in self._frames.items():  # LRU order
            if frame.pins == 0 and frame.protects == 0 and not frame.evicting:
                if not frame.dirty:
                    return page, frame
                if fallback is None:
                    fallback = (page, frame)
        if fallback is not None:
            return fallback
        raise BufferFullError(
            f"node {self.node.node_id}: all {self.capacity} frames pinned; "
            "increase buffer size or lower MPL"
        )

    # -- commit and abort ------------------------------------------------------

    def commit_phase1(self, txn: Transaction) -> Generator[Event, Any, None]:
        """Write log data and (FORCE) force all modified pages."""
        if txn.is_update:
            self.log_writes += 1
            yield from self.node.storage.write_log(txn.node, self.node.cpu)
        if self.node.config.force and (txn.modified or txn.modified_unlocked):
            writes = [
                self.sim.process(
                    self._force_write(page, version), name="force-write"
                )
                for page, version in txn.modified.items()
            ]
            # Sorted: modified_unlocked is a set and process spawn order
            # feeds the event schedule.
            writes.extend(
                self.sim.process(self._force_write(page, None), name="force-write")
                for page in sorted(txn.modified_unlocked)
            )
            yield self.sim.all_of(writes)

    def _force_write(
        self, page: PageId, version: Optional[int]
    ) -> Generator[Event, Any, None]:
        self.force_writes += 1
        yield from self.node.storage.write(page, version, self.node.cpu)
        frame = self._frames.get(page)
        if frame is not None and (version is None or frame.version == version):
            frame.dirty = False

    def finish_commit(self, txn: Transaction) -> None:
        """Unpin the transaction's modified pages (end of commit)."""
        for page in txn.modified:
            frame = self._frames.get(page)
            if frame is not None and frame.pins > 0:
                frame.pins -= 1
        self._unpin_unlocked(txn)

    def rollback(self, txn: Transaction) -> None:
        """Undo uncommitted page versions after an abort.

        The frame is restored to its pre-modification state (version
        and dirtiness): if this node owned the committed dirty copy,
        simply dropping the frame would lose that copy while global
        ownership metadata still points here.
        """
        for page, version in txn.modified.items():
            frame = self._frames.get(page)
            if frame is not None and frame.version == version:
                frame.pins = max(0, frame.pins - 1)
                frame.version = version - 1
                frame.dirty = frame.prev_dirty
        self._unpin_unlocked(txn)

    def _unpin_unlocked(self, txn: Transaction) -> None:
        for page in sorted(txn.modified_unlocked):
            frame = self._frames.get(page)
            if frame is not None and frame.pins > 0:
                frame.pins -= 1

    # -- statistics ----------------------------------------------------------

    def hit_ratio(self, partition_index: int) -> float:
        stats = self.partition_stats.get(partition_index)
        return stats.hit_ratio() if stats else 0.0

    def reset_stats(self) -> None:
        for stats in self.partition_stats.values():
            stats.reset()
        self.evictions = 0
        self.eviction_writes = 0
        self.writeback_writes = 0
        self.force_writes = 0
        self.log_writes = 0
