"""Processing-node model (section 3.2 of the paper).

A processing node consists of a transaction manager, a buffer manager,
a concurrency-control component, a communication interface and a pool
of CPU servers:

* :class:`~repro.node.cpu.CpuPool` -- the node's CPUs (default four
  10-MIPS processors).
* :class:`~repro.node.buffer_manager.BufferManager` -- LRU main-memory
  database buffer with FORCE/NOFORCE update propagation and logging.
* :class:`~repro.node.lock_table.LockTable` -- strict two-phase lock
  table with upgrades, used both locally (PCL global lock authorities)
  and as the state of the global lock table in GEM.
* :class:`~repro.node.comm.CommSubsystem` -- send/receive processing
  with per-message CPU overhead and network transmission.
* :class:`~repro.node.transaction_manager.TransactionManager` -- MPL
  controlled transaction execution with two-phase commit processing.
* :class:`~repro.node.node.Node` -- the container wiring these parts.
"""

from repro.node.cpu import CpuPool
from repro.node.lock_table import LockMode, LockTable
from repro.node.node import Node

__all__ = ["CpuPool", "LockMode", "LockTable", "Node"]
