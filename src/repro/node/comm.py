"""Per-node communication subsystem.

Sending or receiving a message costs CPU at the respective node: 5000
instructions for a short (100 B) control message, 8000 for a long
(4 KB) message carrying a database page (Table 4.1).  A send consists
of: sender CPU overhead (on the sending transaction's critical path),
network transmission, receiver CPU overhead, then delivery -- either
into the destination node's mailbox (dispatched to a protocol handler)
or directly into a waiting reply event for request/reply exchanges.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["Message", "CommSubsystem"]


class Message:
    """A message exchanged between nodes."""

    __slots__ = ("kind", "src", "dst", "payload", "long", "reply_event")

    def __init__(
        self,
        kind: str,
        src: int,
        dst: int,
        payload: Mapping[str, Any],
        long: bool = False,
        reply_event: Optional[Event] = None,
    ) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        self.long = long
        self.reply_event = reply_event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        size = "long" if self.long else "short"
        return f"Message({self.kind!r}, {self.src}->{self.dst}, {size})"


class CommSubsystem:
    """Message send/receive processing for one node."""

    def __init__(self, sim: Simulator, node: "Node", cluster: "Cluster") -> None:
        self.sim = sim
        self.node = node
        self.cluster = cluster
        config = cluster.config
        self.instr_short = config.instructions_msg_short
        self.instr_long = config.instructions_msg_long
        self.bytes_short = config.short_message_bytes
        self.bytes_long = config.long_message_bytes
        self.sent_short = 0
        self.sent_long = 0

    def _overhead(self, long: bool) -> float:
        return self.instr_long if long else self.instr_short

    def send(
        self,
        dst: int,
        kind: str,
        payload: Mapping[str, Any],
        long: bool = False,
        reply_event: Optional[Event] = None,
    ) -> Generator[Event, Any, None]:
        """Send a message; returns after the sender-side CPU overhead.

        Transmission and receiver-side processing continue in the
        background; the caller waits on ``reply_event`` if it expects
        an answer.
        """
        if dst == self.node.node_id:
            raise ValueError("send() must not target the sending node")
        message = Message(kind, self.node.node_id, dst, payload, long, reply_event)
        if long:
            self.sent_long += 1
        else:
            self.sent_short += 1
        yield from self.node.cpu.consume(
            self.instr_long if long else self.instr_short
        )
        self.sim.process(self._deliver(message), name=f"deliver-{kind}")

    def _deliver(self, message: Message) -> Generator[Event, Any, None]:
        network = self.cluster.network
        nbytes = self.bytes_long if message.long else self.bytes_short
        yield from network.transmit(nbytes)
        faults = self.cluster.faults
        if faults is not None and (
            faults.is_down(message.src) or faults.is_down(message.dst)
        ):
            # The message is lost: one of its endpoints crashed while
            # it was in flight.  Reply events watched by the fault
            # manager were already answered with a crash sentinel.
            return
        dst_node = self.cluster.nodes[message.dst]
        dst_comm = dst_node.comm
        yield from dst_node.cpu.consume(
            dst_comm.instr_long if message.long else dst_comm.instr_short
        )
        if message.reply_event is not None:
            if faults is not None and message.reply_event.triggered:
                # A crash sentinel already answered this request; drop
                # the late genuine reply.
                return
            message.reply_event.succeed(message.payload)
        else:
            dst_node.mailbox.put(message)

    def reset_stats(self) -> None:
        self.sent_short = 0
        self.sent_long = 0
