"""Strict two-phase lock table with page-level S/X locks.

This pure (simulation-agnostic) data structure implements the lock
state machine used in two places:

* as the **global lock table (GLT)** held in GEM for the closely
  coupled configurations -- the GEM protocol charges entry-access
  delays around each operation;
* as the **local lock table of a global lock authority (GLA)** node for
  primary copy locking -- the PCL protocol charges messages around
  remote operations.

Grant discipline is FIFO with two classic refinements: compatible
requests at the queue head are granted in batches, and lock *upgrades*
(S -> X by a current holder) jump to the front of the queue.

Every lock entry also carries the coherency-control metadata the paper
stores alongside lock state: the page sequence number, the current
page owner (NOFORCE) and read-authorization node sets (PCL read
optimization).  Metadata persists after all locks are released.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.db.pages import PageId

__all__ = ["LockMode", "LockEntry", "LockTable"]


class LockMode(str, enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(mode: LockMode, held_modes: Iterable[LockMode]) -> bool:
    if mode is LockMode.SHARED:
        return all(m is LockMode.SHARED for m in held_modes)
    return not held_modes


class _Request:
    __slots__ = ("txn", "mode", "on_grant", "upgrade")

    def __init__(self, txn: int, mode: LockMode, on_grant: Callable, upgrade: bool) -> None:
        self.txn = txn
        self.mode = mode
        self.on_grant = on_grant
        self.upgrade = upgrade


class LockEntry:
    """Lock state plus coherency metadata for one page."""

    __slots__ = ("holders", "queue", "seqno", "owner", "auth_nodes")

    def __init__(self) -> None:
        self.holders: Dict[int, LockMode] = {}
        self.queue: Deque[_Request] = deque()
        #: Page sequence number: incremented for every modification.
        self.seqno: int = 0
        #: Node holding the current page copy (NOFORCE), else None.
        self.owner: Optional[int] = None
        #: Nodes holding a read authorization (PCL read optimization).
        self.auth_nodes: Set[int] = set()

    def is_idle(self) -> bool:
        return not self.holders and not self.queue


class LockTable:
    """Lock entries for a set of pages."""

    def __init__(
        self,
        name: str = "locktable",
        seqno_init: Optional[Callable[[PageId], int]] = None,
    ) -> None:
        self.name = name
        #: Sequence number of a freshly created entry.  A table built
        #: during crash recovery must not promise seqno 0 for pages it
        #: has never seen -- it initializes entries from the committed
        #: ledger state instead.
        self._seqno_init = seqno_init
        self._entries: Dict[PageId, LockEntry] = {}
        self._blocked: Dict[int, PageId] = {}  # txn -> page it waits on
        self.requests = 0
        self.immediate_grants = 0
        self.waits = 0

    # -- entry access ----------------------------------------------------

    def entry(self, page: PageId) -> LockEntry:
        entry = self._entries.get(page)
        if entry is None:
            entry = LockEntry()
            if self._seqno_init is not None:
                entry.seqno = self._seqno_init(page)
            self._entries[page] = entry
        return entry

    def peek(self, page: PageId) -> Optional[LockEntry]:
        return self._entries.get(page)

    def holds(self, txn: int, page: PageId) -> Optional[LockMode]:
        entry = self._entries.get(page)
        return entry.holders.get(txn) if entry else None

    def is_blocked(self, txn: int) -> bool:
        return txn in self._blocked

    def blocked_page(self, txn: int) -> Optional[PageId]:
        return self._blocked.get(txn)

    # -- locking protocol --------------------------------------------------

    def request(
        self, txn: int, page: PageId, mode: LockMode, on_grant: Callable[[], None]
    ) -> bool:
        """Request a lock.

        Returns True if the lock was granted immediately.  Otherwise
        the request is queued and ``on_grant`` will be invoked when the
        lock is eventually granted.
        """
        if txn in self._blocked:
            raise RuntimeError(f"txn {txn} already blocked on {self._blocked[txn]}")
        self.requests += 1
        entry = self.entry(page)
        held = entry.holders.get(txn)
        if held is not None:
            if mode is LockMode.SHARED or held is LockMode.EXCLUSIVE:
                # Re-request of an already covered mode.
                self.immediate_grants += 1
                return True
            # Upgrade S -> X.
            if len(entry.holders) == 1:
                entry.holders[txn] = LockMode.EXCLUSIVE
                self.immediate_grants += 1
                return True
            entry.queue.appendleft(_Request(txn, mode, on_grant, upgrade=True))
            self._blocked[txn] = page
            self.waits += 1
            return False
        if not entry.queue and _compatible(mode, entry.holders.values()):
            entry.holders[txn] = mode
            self.immediate_grants += 1
            return True
        entry.queue.append(_Request(txn, mode, on_grant, upgrade=False))
        self._blocked[txn] = page
        self.waits += 1
        return False

    def release(self, txn: int, page: PageId) -> List[Tuple[int, LockMode]]:
        """Release ``txn``'s lock on ``page``.

        Returns the list of ``(txn, mode)`` newly granted as a result;
        their ``on_grant`` callbacks have already been invoked.
        """
        entry = self._entries.get(page)
        if entry is None or txn not in entry.holders:
            raise KeyError(f"txn {txn} holds no lock on page {page}")
        del entry.holders[txn]
        return self._promote(entry)

    def release_all(
        self, txn: int, pages: Iterable[PageId]
    ) -> List[Tuple[int, LockMode]]:
        """Release a set of pages held by ``txn``; returns all new grants."""
        granted: List[Tuple[int, LockMode]] = []
        for page in pages:
            granted.extend(self.release(txn, page))
        return granted

    def cancel(self, txn: int, page: PageId) -> List[Tuple[int, LockMode]]:
        """Remove ``txn``'s *queued* request for ``page`` (abort path)."""
        entry = self._entries.get(page)
        if entry is None:
            return []
        for request in list(entry.queue):
            if request.txn == txn:
                entry.queue.remove(request)
                break
        else:
            return []
        self._blocked.pop(txn, None)
        return self._promote(entry)

    def _promote(self, entry: LockEntry) -> List[Tuple[int, LockMode]]:
        granted: List[Tuple[int, LockMode]] = []
        while entry.queue:
            head = entry.queue[0]
            if head.upgrade:
                others = [t for t in entry.holders if t != head.txn]
                if others:
                    break
                entry.holders[head.txn] = LockMode.EXCLUSIVE
            else:
                if not _compatible(head.mode, entry.holders.values()):
                    break
                entry.holders[head.txn] = head.mode
            entry.queue.popleft()
            self._blocked.pop(head.txn, None)
            granted.append((head.txn, head.mode))
            head.on_grant()
        return granted

    # -- deadlock support --------------------------------------------------

    def waiting_for(self, txn: int) -> Set[int]:
        """Transactions that ``txn`` currently waits for in this table.

        A blocked transaction waits for all incompatible current
        holders of its page plus all incompatible requests queued ahead
        of it.
        """
        page = self._blocked.get(txn)
        if page is None:
            return set()
        entry = self._entries[page]
        position = None
        my_mode = None
        for index, request in enumerate(entry.queue):
            if request.txn == txn:
                position = index
                my_mode = request.mode
                break
        if position is None:
            return set()
        blockers: Set[int] = set()
        for holder, held_mode in entry.holders.items():
            if holder == txn:
                continue
            if my_mode is LockMode.EXCLUSIVE or held_mode is LockMode.EXCLUSIVE:
                blockers.add(holder)
        for request in list(entry.queue)[:position]:
            if request.txn == txn:
                continue
            if my_mode is LockMode.EXCLUSIVE or request.mode is LockMode.EXCLUSIVE:
                blockers.add(request.txn)
        return blockers

    # -- introspection -----------------------------------------------------

    def held_pages(self, txn: int) -> List[PageId]:
        """All pages on which ``txn`` currently holds a lock (slow scan)."""
        return [
            page for page, entry in self._entries.items() if txn in entry.holders
        ]

    def num_entries(self) -> int:
        return len(self._entries)

    def num_blocked(self) -> int:
        """Number of transactions currently waiting in this table."""
        return len(self._blocked)

    def max_queue_length(self) -> int:
        """Longest current wait queue over all entries."""
        return max((len(e.queue) for e in self._entries.values()), default=0)
