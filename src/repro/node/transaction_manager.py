"""Transaction execution control (section 3.2).

The transaction manager admits transactions up to the node's
multiprogramming level (MPL); beyond that they wait in the input
queue.  A transaction's execution requests CPU service at begin of
transaction, for every record access, and at end of transaction
(exponentially distributed instruction counts).  Each record access
acquires the page lock from the concurrency-control protocol (unless
already held) and drives the buffer manager.  Commit processing has
two phases: phase 1 writes log data and -- under FORCE -- forces all
modified pages to permanent storage; phase 2 publishes the new page
sequence numbers and releases the locks through the protocol.

Deadlock victims are rolled back, wait a short back-off, and restart.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple, TYPE_CHECKING

from repro.cc.base import LockGrant
from repro.errors import NodeCrashed, TransactionAborted
from repro.obs import phases
from repro.sim.engine import Event, Process
from repro.workload.transaction import PageAccess, Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.node import Node

__all__ = ["TransactionManager"]

#: Marker page number for "append to this node's HISTORY cursor".
HISTORY_APPEND = -1


class TransactionManager:
    """Executes the transactions routed to one node."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.sim = node.sim
        self.stream = node.cluster.streams.stream(f"tm-{node.node_id}")
        profile = node.cluster.instruction_profile
        self.instr_bot, self.instr_per_access, self.instr_eot = profile
        #: In-flight transactions: txn_id -> (txn, lifecycle process).
        #: The fault manager interrupts these when the node crashes.
        self.active: Dict[int, Tuple[Transaction, Process]] = {}

    def submit(self, txn: Transaction) -> None:
        """Accept a transaction from the SOURCE/router."""
        txn.node = self.node.node_id
        txn.arrival_time = self.sim.now
        self.node.arrivals.increment()
        self.node.recorder.txn_begin(txn.txn_id, self.node.node_id, self.sim.now)
        proc = self.sim.process(self._lifecycle(txn), name=f"txn-{txn.txn_id}")
        if proc.is_alive:
            self.active[txn.txn_id] = (txn, proc)

    def _lifecycle(self, txn: Transaction) -> Generator[Event, Any, None]:
        try:
            yield from self._admitted(txn)
        except NodeCrashed:
            # The node died under this transaction.  The unwound
            # finally blocks already returned its resources; the work
            # is lost (not restarted -- the arrival itself is gone).
            self.node.recorder.txn_end(txn.txn_id, self.sim.now, committed=False)
        finally:
            self.active.pop(txn.txn_id, None)

    def _admitted(self, txn: Transaction) -> Generator[Event, Any, None]:
        recorder = self.node.recorder
        request = self.node.mpl.request()
        try:
            with recorder.span(txn.txn_id, phases.INPUT_QUEUE):
                yield request
        except BaseException:
            self.node.mpl.cancel(request)
            raise
        try:
            txn.start_time = self.sim.now
            while True:
                try:
                    yield from self._execute_once(txn)
                    break
                except TransactionAborted:
                    self.node.aborts.increment()
                    txn.restarts += 1
                    with recorder.span(txn.txn_id, phases.BACKOFF):
                        yield from self._rollback(txn)
                        yield self.sim.timeout(self.stream.exponential(0.01))
                    txn.reset_runtime()
            self.node.record_completion(txn, self.sim.now - txn.arrival_time)
        finally:
            self.node.mpl.release()

    def _execute_once(self, txn: Transaction) -> Generator[Event, Any, None]:
        node = self.node
        recorder = node.recorder
        with recorder.span(txn.txn_id, phases.CPU):
            yield from node.cpu.consume_exp(self.instr_bot)
        for access in txn.accesses:
            self._materialize_history(access)
            with recorder.span(txn.txn_id, phases.CPU):
                yield from node.cpu.consume_exp(self.instr_per_access)
            grant = None
            if access.lockable:
                grant = yield from self._lock(txn, access)
            yield from node.buffer.access(txn, access, grant)
        # Commit processing: EOT CPU, log (and FORCE force-writes),
        # sequence-number publication and lock release.
        with recorder.span(txn.txn_id, phases.COMMIT):
            yield from node.cpu.consume_exp(self.instr_eot)
            yield from node.buffer.commit_phase1(txn)
            # The modified versions become the globally committed ones.
            for page, version in txn.modified.items():
                node.cluster.ledger.install_commit(page, version)
            yield from node.protocol.commit_release(txn)
            node.buffer.finish_commit(txn)

    def _lock(
        self, txn: Transaction, access: PageAccess
    ) -> Generator[Event, Any, LockGrant]:
        """Acquire the page lock unless an adequate one is held."""
        node = self.node
        page = access.page
        held = txn.held_locks.get(page)
        if held is not None and (held or not access.write):
            return txn.grants[page]
        cached = node.buffer.cached_version(page)
        if page in txn.modified:
            # Our own modified copy is by definition current; tell the
            # protocol the pre-modification seqno so it does not ship a
            # page we already have.
            cached = txn.modified[page] - 1
        # The claimed copy must survive until the grant arrives: the
        # protocol decides page shipping based on it (PCL), so protect
        # it against capacity eviction for the duration of the request.
        protected = cached is not None and node.buffer.protect(page)
        try:
            grant = yield from node.protocol.acquire(txn, page, access.write, cached)
        finally:
            if protected:
                node.buffer.unprotect(page)
        txn.grants[page] = grant
        return grant

    def _materialize_history(self, access: PageAccess) -> None:
        """Resolve the per-node HISTORY append cursor on first touch."""
        if access.page[1] == HISTORY_APPEND:
            partition = self.node.database.by_index(access.page[0])
            access.page = self.node.next_history_page(
                partition.index, partition.blocking_factor
            )

    def _rollback(self, txn: Transaction) -> Generator[Event, Any, None]:
        self.node.buffer.rollback(txn)
        yield from self.node.protocol.abort_release(txn)
