"""Transaction execution control (section 3.2).

The transaction manager admits transactions up to the node's
multiprogramming level (MPL); beyond that they wait in the input
queue.  A transaction's execution requests CPU service at begin of
transaction, for every record access, and at end of transaction
(exponentially distributed instruction counts).  Each record access
acquires the page lock from the concurrency-control protocol (unless
already held) and drives the buffer manager.  Commit processing has
two phases: phase 1 writes log data and -- under FORCE -- forces all
modified pages to permanent storage; phase 2 publishes the new page
sequence numbers and releases the locks through the protocol.

Deadlock victims are rolled back, wait a short back-off, and restart.
"""

from __future__ import annotations

from math import log
from typing import Any, Dict, Generator, Tuple, TYPE_CHECKING

from repro.cc.base import LockGrant
from repro.errors import NodeCrashed, TransactionAborted
from repro.obs import phases
from repro.sim.engine import Event, Process
from repro.workload.transaction import PageAccess, Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.node import Node

__all__ = ["TransactionManager"]

#: Marker page number for "append to this node's HISTORY cursor".
HISTORY_APPEND = -1


class TransactionManager:
    """Executes the transactions routed to one node."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.sim = node.sim
        self.stream = node.cluster.streams.stream(f"tm-{node.node_id}")
        profile = node.cluster.instruction_profile
        self.instr_bot, self.instr_per_access, self.instr_eot = profile
        if min(profile) < 0:
            raise ValueError(f"negative instruction count in profile: {profile!r}")
        #: In-flight transactions: txn_id -> (txn, lifecycle process).
        #: The fault manager interrupts these when the node crashes.
        self.active: Dict[int, Tuple[Transaction, Process]] = {}

    def submit(self, txn: Transaction) -> None:
        """Accept a transaction from the SOURCE/router."""
        txn.node = self.node.node_id
        txn.arrival_time = self.sim.now
        self.node.arrivals.increment()
        self.node.recorder.txn_begin(txn.txn_id, self.node.node_id, self.sim.now)
        proc = self.sim.process(self._lifecycle(txn), name=f"txn-{txn.txn_id}")
        if proc.is_alive:
            self.active[txn.txn_id] = (txn, proc)

    def _lifecycle(self, txn: Transaction) -> Generator[Event, Any, None]:
        # Admission, the execute/restart loop and commit are one flat
        # generator: this frame is resumed for every event the
        # transaction waits on, and each level of ``yield from``
        # delegation adds a frame walk to every resume.
        node = self.node
        sim = self.sim
        recorder = node.recorder
        try:
            request = node.mpl.request()
            try:
                with recorder.span(txn.txn_id, phases.INPUT_QUEUE):
                    yield request
            except BaseException:
                node.mpl.cancel(request)
                raise
            try:
                txn.start_time = sim.now
                cpu = node.cpu
                buffer = node.buffer
                held_locks = txn.held_locks  # cleared in place on restart
                grants = txn.grants
                # The three CPU phases below inline cpu.consume_exp:
                # the exponential draw ``-log(1 - U) * mean`` consumes
                # the same uniform from the same stream as
                # ``expovariate(1 / mean)``, minus the method-call and
                # division overhead; the grant/hold/release accounting
                # is unchanged, minus the acquire-generator frame on
                # every resume.  Each slice is coalesced
                # (Resource.hold): one slice-end entry, one resume,
                # whether or not the CPU is contended.  The per-access
                # phase -- the hottest span site in the simulator --
                # skips the span context manager entirely when the
                # recorder is disabled.
                cpu_res = cpu.resource
                cpu_hold = cpu_res.hold
                speed = cpu.speed
                rnd = cpu.stream._rng.random
                mean_bot = self.instr_bot
                mean_access = self.instr_per_access
                mean_eot = self.instr_eot
                tracing = recorder.enabled
                while True:
                    try:
                        with recorder.span(txn.txn_id, phases.CPU):
                            instr = -log(1.0 - rnd()) * mean_bot if mean_bot else 0.0
                            cpu.instructions_executed += instr
                            if instr:
                                entry = cpu_hold(instr / speed)
                                try:
                                    yield entry
                                except BaseException:
                                    cpu_res.hold_cancel(entry)
                                    raise
                        for access in txn.accesses:
                            if access.page[1] == HISTORY_APPEND:
                                self._materialize_history(access)
                            if tracing:
                                with recorder.span(txn.txn_id, phases.CPU):
                                    instr = (
                                        -log(1.0 - rnd()) * mean_access
                                        if mean_access
                                        else 0.0
                                    )
                                    cpu.instructions_executed += instr
                                    if instr:
                                        entry = cpu_hold(instr / speed)
                                        try:
                                            yield entry
                                        except BaseException:
                                            cpu_res.hold_cancel(entry)
                                            raise
                            else:
                                instr = (
                                    -log(1.0 - rnd()) * mean_access
                                    if mean_access
                                    else 0.0
                                )
                                cpu.instructions_executed += instr
                                if instr:
                                    entry = cpu_hold(instr / speed)
                                    try:
                                        yield entry
                                    except BaseException:
                                        cpu_res.hold_cancel(entry)
                                        raise
                            grant = None
                            if access.lockable:
                                # Held-lock fast path: no protocol call,
                                # no yield, no extra generator.
                                held = held_locks.get(access.page)
                                if held is not None and (held or not access.write):
                                    grant = grants[access.page]
                                else:
                                    grant = yield from self._lock(txn, access)
                            yield from buffer.access(txn, access, grant)
                        # Commit processing: EOT CPU, log (and FORCE
                        # force-writes), sequence-number publication and
                        # lock release.
                        with recorder.span(txn.txn_id, phases.COMMIT):
                            instr = -log(1.0 - rnd()) * mean_eot if mean_eot else 0.0
                            cpu.instructions_executed += instr
                            if instr:
                                entry = cpu_hold(instr / speed)
                                try:
                                    yield entry
                                except BaseException:
                                    cpu_res.hold_cancel(entry)
                                    raise
                            # Commit phase 0: optimistic protocols
                            # validate here and raise TransactionAborted
                            # into the rollback/restart path below.  A
                            # no-op (zero events) for locking protocols.
                            yield from node.protocol.prepare_commit(txn)
                            yield from buffer.commit_phase1(txn)
                            # The modified versions become the globally
                            # committed ones.
                            for page, version in txn.modified.items():
                                node.cluster.ledger.install_commit(page, version)
                            yield from node.protocol.commit_release(txn)
                            buffer.finish_commit(txn)
                        break
                    except TransactionAborted:
                        node.aborts.increment()
                        txn.restarts += 1
                        with recorder.span(txn.txn_id, phases.BACKOFF):
                            yield from self._rollback(txn)
                            yield sim.timeout(self.stream.exponential(0.01))
                        txn.reset_runtime()
                node.record_completion(txn, sim.now - txn.arrival_time)
            finally:
                node.mpl.release()
        except NodeCrashed:
            # The node died under this transaction.  The unwound
            # finally blocks already returned its resources; the work
            # is lost (not restarted -- the arrival itself is gone).
            recorder.txn_end(txn.txn_id, sim.now, committed=False)
        finally:
            self.active.pop(txn.txn_id, None)

    def _lock(
        self, txn: Transaction, access: PageAccess
    ) -> Generator[Event, Any, LockGrant]:
        """Acquire the page lock unless an adequate one is held."""
        node = self.node
        page = access.page
        held = txn.held_locks.get(page)
        if held is not None and (held or not access.write):
            return txn.grants[page]
        cached = node.buffer.cached_version(page)
        if page in txn.modified:
            # Our own modified copy is by definition current; tell the
            # protocol the pre-modification seqno so it does not ship a
            # page we already have.
            cached = txn.modified[page] - 1
        # The claimed copy must survive until the grant arrives: the
        # protocol decides page shipping based on it (PCL), so protect
        # it against capacity eviction for the duration of the request.
        protected = cached is not None and node.buffer.protect(page)
        try:
            grant = yield from node.protocol.acquire(txn, page, access.write, cached)
        finally:
            if protected:
                node.buffer.unprotect(page)
        txn.grants[page] = grant
        return grant

    def _materialize_history(self, access: PageAccess) -> None:
        """Resolve the per-node HISTORY append cursor on first touch."""
        if access.page[1] == HISTORY_APPEND:
            partition = self.node.database.by_index(access.page[0])
            access.page = self.node.next_history_page(
                partition.index, partition.blocking_factor
            )

    def _rollback(self, txn: Transaction) -> Generator[Event, Any, None]:
        self.node.buffer.rollback(txn)
        yield from self.node.protocol.abort_release(txn)
