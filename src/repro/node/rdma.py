"""Memory disaggregation: concurrency/coherency control over RDMA.

The third coupling regime detaches memory from compute (Wang et al.,
"The Case for Distributed Shared-Memory Databases with RDMA-Enabled
Memory Disaggregation"): lock words, the page directory and the
NOFORCE page copies live in a **passive remote memory pool**, reached
by one-sided verbs over the fabric modelled in
:mod:`repro.devices.rdma`.  Structurally this reuses the GEM global
lock table machinery -- the same :class:`~repro.node.lock_table.
LockTable` state machine, sequence numbers and NOFORCE ownership --
with the cost model swapped:

* a lock acquisition is **one remote Compare&Swap** on the lock word
  co-located with the page (GEM: two entry accesses against the GLT
  server);
* a page fetch is a **one-sided pool read** (GEM: a message exchange
  with the owning node's buffer);
* commit installs the modified pages into the pool with one-sided
  page writes *before* releasing any lock, so a later grantee always
  finds the new version resident.

Compute-side buffers act as caches over the pool with **eager
invalidation**: installing a version drops every other node's stale
cached copy at the install instant, so a reader can never observe a
stale frame after its invalidation (the cross-regime conformance
suite checks exactly this).

Failure semantics differ from both couplings the paper studies.  The
pool survives a compute-node crash, so -- like GEM -- no lock state
is lost; but there is no server that could revoke the dead node's
lock words, so recovery must first sit out the node's **lease**
(``config.rdma_lock_lease_seconds``).  Pages whose current committed
version is pool-resident are *not* lost with the node's buffer and
need no REDO, which makes the REDO phase structurally cheaper than
under either GEM or PCL.  A restarted node pays a memory-region
re-registration delay (``config.rdma_reregistration_seconds``) before
it can issue verbs again -- reintegration sits between GEM's (nothing
to rebuild) and PCL's (GLA failback).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Generator,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.cc.base import CCProtocol, LockGrant, PageSource
from repro.db.pages import PageId
from repro.errors import TransactionAborted
from repro.obs import phases
from repro.node.lock_table import LockMode, LockTable
from repro.sim.engine import Event
from repro.sim.stats import Tally
from repro.workload.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.manager import CrashRecord, FaultManager
    from repro.system.cluster import Cluster

__all__ = ["RdmaAccessHelper", "RdmaLockingProtocol"]


class RdmaAccessHelper:
    """Shared pool-access machinery for every protocol under RDMA.

    Owns the **pool residency map** (page -> committed version of the
    copy resident in the remote pool) and wraps the fabric's verbs
    with the caller-side CPU post/poll cost and the ``rdma`` phase
    span.  :class:`RdmaLockingProtocol` uses it directly; the MVCC and
    DGCC protocols instantiate one when the cluster couples via RDMA
    and route their directory traffic through it.
    """

    def __init__(self, cluster: "Cluster") -> None:
        fabric = cluster.rdma
        if fabric is None:
            raise ValueError("RdmaAccessHelper requires an RDMA-coupled cluster")
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.fabric = fabric
        self.recorder = cluster.recorder
        self._op_instr = cluster.config.instructions_per_rdma_op
        #: Pool-resident committed page copies: page -> version.  Under
        #: NOFORCE this is the pool's mirror of GEM's page ownership --
        #: installed at commit, dropped once the version reached disk.
        self.pool: Dict[PageId, int] = {}

    # -- verb wrappers ---------------------------------------------------

    def _verb(
        self,
        node_id: int,
        ops: int,
        service: Iterator[Event],
        txn_id: Optional[int],
    ) -> Generator[Event, Any, None]:
        """``ops`` one-sided verbs, CPU held for post + poll throughout.

        ``txn_id`` attributes the time to that transaction's ``rdma``
        phase (acquire path); release/recovery-path verbs pass None and
        stay inside the covering COMMIT/BACKOFF span.
        """
        cpu = self.cluster.nodes[node_id].cpu
        with self.recorder.span(txn_id, phases.RDMA):
            yield from cpu.grab()
            try:
                yield cpu.busy_work(ops * self._op_instr)
                yield from service
            finally:
                cpu.release()

    def cas(
        self, node_id: int, count: int = 1, txn_id: Optional[int] = None
    ) -> Generator[Event, Any, None]:
        """``count`` remote CAS round trips on lock/directory words."""
        if count:
            yield from self._verb(node_id, count, self.fabric.cas(count), txn_id)

    def read(
        self, node_id: int, count: int = 1, txn_id: Optional[int] = None
    ) -> Generator[Event, Any, None]:
        """``count`` one-sided small reads (word re-read after a wait)."""
        if count:
            yield from self._verb(
                node_id, count, self.fabric.read_entry(count), txn_id
            )

    # -- pool residency ----------------------------------------------------

    def current(self, page: PageId, seqno: int) -> bool:
        """True if the pool holds ``page`` at (or beyond) ``seqno``."""
        version = self.pool.get(page)
        return version is not None and version >= seqno

    def install(
        self, node_id: int, updates: Sequence[Tuple[PageId, int]]
    ) -> Generator[Event, Any, None]:
        """Write committed pages into the pool (one-sided page writes).

        Records residency and **eagerly invalidates** every other
        node's now-stale cached copy -- zero simulated time, at the
        install instant, in node order (deterministic).  The cache
        coherence rule of the compute-side caches: after this returns,
        no surviving buffer holds a frame older than ``version``
        unpinned.
        """
        if not updates:
            return
        yield from self._verb(
            node_id, len(updates), self.fabric.write_pages(len(updates)), None
        )
        for page, version in updates:
            if version > self.pool.get(page, 0):
                self.pool[page] = version
            for node in self.cluster.nodes:
                if node.node_id != node_id:
                    node.buffer.invalidate_stale(page, version)

    def fetch(
        self, txn: Transaction, page: PageId, seqno: int
    ) -> Generator[Event, Any, Optional[int]]:
        """One-sided page read from the pool.

        Returns the resident version (>= the promised ``seqno``) or
        None when residency lapsed -- the copy reached disk, so the
        permanent database is guaranteed current again and the caller
        falls back to a storage read.
        """
        yield from self._verb(txn.node, 1, self.fabric.read_page(), txn.txn_id)
        version = self.pool.get(page)
        if version is None or version < seqno:
            return None
        return version

    def written_back(self, page: PageId, version: int) -> None:
        """Drop pool residency once ``version`` reached disk (the pool
        copy and the permanent copy are now identical)."""
        if self.pool.get(page) == version:
            del self.pool[page]

    # -- failure handling --------------------------------------------------

    def lease_wait(self, record: "CrashRecord") -> Generator[Event, Any, None]:
        """Sit out the crashed node's lease on its pool-resident words.

        One-sided locking has no server that could revoke a dead
        holder's lock words or reservations; they become reclaimable
        only once the node's lease expired.  Recovery calls this before
        touching any word the dead node may still own.
        """
        expiry = record.crash_time + self.config.rdma_lock_lease_seconds
        if self.sim.now < expiry:
            yield self.sim.timeout(expiry - self.sim.now)

    def trim_lost(self, record: "CrashRecord") -> None:
        """Remove pool-resident pages from the crash's lost set.

        Runs inside :meth:`CCProtocol.crash_node`, before the fault
        manager fences ``record.lost`` behind REDO: a page whose
        current committed version sits in the pool did *not* die with
        the compute node's buffer and needs no REDO -- the structural
        recovery advantage of disaggregated memory.
        """
        resident = [
            page
            for page, committed in record.lost.items()
            if self.pool.get(page, 0) >= committed
        ]
        for page in resident:
            del record.lost[page]

    def reintegrate(self, record: "CrashRecord") -> Generator[Event, Any, None]:
        """Re-admit a restarted compute node to the fabric.

        Memory-region/queue-pair re-registration, then two verification
        reads against the pool.  No lock state is rebuilt (it never
        left the pool), but unlike GEM the fabric endpoint itself must
        be re-established -- reintegration lands between the two
        paper regimes.
        """
        yield self.sim.timeout(self.config.rdma_reregistration_seconds)
        yield from self.read(record.node, 2)


class RdmaLockingProtocol(CCProtocol):
    """2PL with lock words co-located with the data in the pool.

    The GEM locking protocol with the cost model swapped: every GLT
    entry-access pair becomes one remote CAS, grant notifications are
    word re-reads, and NOFORCE page exchange goes through the pool
    instead of owner-to-requester messages.  Lock state survives
    compute-node crashes (it lives in the pool), but reclaiming a dead
    node's words must wait out its lease.
    """

    name = "rdma"

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.detector = cluster.detector
        self.recorder = cluster.recorder
        self.rdma = RdmaAccessHelper(cluster)
        #: Pool lock table: the lock words' shared state machine.  The
        #: table object is bookkeeping only -- every access to it is
        #: charged as fabric verbs by the callers.
        self.plt = LockTable("plt")
        self._noforce = self.config.noforce
        self.lock_wait_time = Tally("rdma.lock_wait")
        self.page_request_delay = Tally("rdma.page_request_delay")
        self.page_requests = 0
        self.page_requests_failed = 0
        self.local_lock_requests = 0

    # -- lock acquisition --------------------------------------------------

    def acquire(
        self,
        txn: Transaction,
        page: PageId,
        write: bool,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, LockGrant]:
        node_id = txn.node
        txn_id = txn.txn_id
        mode = LockMode.EXCLUSIVE if write else LockMode.SHARED
        # One remote CAS claims the lock word -- or, on conflict,
        # registers this transaction in the word's wait list.
        yield from self.rdma.cas(node_id, 1, txn_id=txn_id)
        # Created lazily: immediate grants (the common case) never
        # invoke on_grant, so the wait event would be garbage.
        wait_event: Optional[Event] = None

        def on_grant() -> None:
            self.detector.clear(txn_id)
            assert wait_event is not None  # created before any queueing
            wait_event.succeed()

        granted = self.plt.request(txn_id, page, mode, on_grant)
        if not granted:
            wait_event = self.sim.event()
            blocked_at = self.sim.now

            def abort_victim() -> None:
                self.plt.cancel(txn_id, page)
                wait_event.fail(TransactionAborted(txn_id))

            self.detector.register_block(txn_id, self.plt, abort_victim)
            # The pool lock words are the global lock authority: waits
            # here are global lock waits in the breakdown.
            with self.recorder.span(txn_id, phases.LOCK_GLOBAL):
                yield wait_event  # raises TransactionAborted if chosen victim
            self.lock_wait_time.record(self.sim.now - blocked_at)
            # Re-read the word after wake-up to observe the grant.
            yield from self.rdma.read(node_id, 1, txn_id=txn_id)
        txn.held_locks[page] = write or txn.held_locks.get(page, False)
        txn.local_lock_requests += 1
        self.local_lock_requests += 1
        entry = self.plt.entry(page)
        if self._noforce and self.rdma.current(page, entry.seqno):
            # The current committed copy is pool-resident: a one-sided
            # read serves it no matter which node installed it -- and
            # no matter whether that node is still alive (the pool
            # survives compute crashes; no liveness check, unlike GEM).
            return LockGrant(
                entry.seqno,
                source=PageSource.OWNER,
                owner_node=entry.owner,
                local=True,
            )
        return LockGrant(entry.seqno, source=PageSource.STORAGE, local=True)

    # -- NOFORCE page transfers --------------------------------------------

    def request_page_from_owner(
        self, txn: Transaction, page: PageId, grant: LockGrant
    ) -> Generator[Event, Any, Optional[int]]:
        """One-sided pool read (``grant.owner_node`` is the installer
        hint, not a liveness requirement -- no owner participates)."""
        self.page_requests += 1
        started = self.sim.now
        version = yield from self.rdma.fetch(txn, page, grant.seqno)
        if version is None:
            self.page_requests_failed += 1
        else:
            self.page_request_delay.record(self.sim.now - started)
        return version

    # -- release -----------------------------------------------------------

    def commit_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        node_id = txn.node
        txn_id = txn.txn_id
        # Install the committed pages in the pool *before* releasing
        # any lock: a grantee woken by the release must find the new
        # version resident.
        if self._noforce and txn.modified:
            yield from self.rdma.install(node_id, sorted(txn.modified.items()))
        # No defensive copy: only the owning transaction's process
        # mutates held_locks, and it is suspended in this generator.
        for page in txn.held_locks:
            # One CAS releases the word; for modified pages the same
            # word update publishes the new sequence number and the
            # installer hint (word and directory entry are one).
            yield from self.rdma.cas(node_id, 1)
            entry = self.plt.entry(page)
            new_version = txn.modified.get(page)
            if new_version is not None:
                entry.seqno = new_version
                entry.owner = node_id if self._noforce else None
            granted = self.plt.release(txn_id, page)
            if granted:
                # Each woken waiter re-reads the word it spun on.
                yield from self.rdma.read(node_id, len(granted))
        txn.held_locks.clear()

    def abort_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        # Idempotent and interruption-safe, exactly like the GEM
        # protocol: pages pop as they release, already-released words
        # are skipped instead of double-released.
        node_id = txn.node
        txn_id = txn.txn_id
        held = txn.held_locks
        while held:
            page = next(iter(held))  # insertion order
            if self.plt.holds(txn_id, page) is None:
                held.pop(page, None)
                continue
            yield from self.rdma.cas(node_id, 1)
            # Re-check after yielding: a crash-path abort may have
            # raced this release while the verb was queued.
            if self.plt.holds(txn_id, page) is not None:
                granted = self.plt.release(txn_id, page)
            else:
                granted = []
            held.pop(page, None)
            if granted:
                yield from self.rdma.read(node_id, len(granted))

    # -- write-back hook ---------------------------------------------------

    def page_written_back(
        self, node_id: int, page: PageId, version: int
    ) -> Generator[Event, Any, None]:
        """A committed version reached disk: drop the pool residency
        and the installer hint (storage is current again)."""
        if self.config.force:
            return
        entry = self.plt.peek(page)
        if entry is None:
            return
        yield from self.rdma.cas(node_id, 1)
        if entry.owner == node_id and entry.seqno == version:
            entry.owner = None
        self.rdma.written_back(page, version)

    # -- fault injection ---------------------------------------------------

    def lock_tables(self) -> Tuple[LockTable, ...]:
        return (self.plt,)

    def crash_node(self, faults: "FaultManager", record: "CrashRecord") -> None:
        """The pool survives: every page whose committed version is
        pool-resident leaves the lost set before the fault manager
        fences it -- those pages need no REDO, only the (typically
        few) versions committed to the ledger but not yet installed
        in the pool do.  Lock words are untouched here; they stay set
        until the dead node's lease expires."""
        self.rdma.trim_lost(record)

    def recover(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """Failover: wait out the lease, then reclaim the dead words.

        One-sided locking has no server that could revoke a crashed
        holder's words, so the coordinator must first sit out the
        node's lease.  Reclamation itself mirrors GEM -- scan for the
        dead transactions' words, reconcile sequence numbers with the
        ledger, release -- but each reclaim is one CAS, and REDO only
        covers the (pool-trimmed) lost set.
        """
        yield from self.rdma.lease_wait(record)
        coord = faults.coordinator()
        coord_node = self.cluster.nodes[coord]
        ledger = self.cluster.ledger
        for txn in record.killed:
            # The pool is authoritative: a word set just before the
            # crash may never have reached txn.held_locks, so scan the
            # table rather than trust the dead bookkeeping.
            pages = set(txn.held_locks)
            pages.update(self.plt.held_pages(txn.txn_id))
            for page in sorted(pages):
                if self.plt.holds(txn.txn_id, page) is None:
                    continue
                yield from self.rdma.cas(coord, 1)
                yield from coord_node.cpu.consume(
                    faults.config.recovery_instructions_per_lock
                )
                entry = self.plt.entry(page)
                entry.seqno = max(entry.seqno, ledger.committed_version(page))
                granted = self.plt.release(txn.txn_id, page)
                if granted:
                    yield from self.rdma.read(coord, len(granted))
        # Installer hints naming the dead node are void (its buffer is
        # gone); pool residency -- which actually serves the grants --
        # is untouched.  Lost pages keep readers fenced until REDO.
        for page in sorted(
            p for p, e in self.plt._entries.items() if e.owner == record.node
        ):
            if page in record.lost:
                continue
            yield from self.rdma.cas(coord, 1)
            self.plt._entries[page].owner = None
        yield from faults.redo_pages(record, coord)
        for entry in self.plt._entries.values():
            if entry.owner == record.node:
                entry.owner = None

    def reintegrate(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """Fabric re-registration before the node can issue verbs."""
        yield from self.rdma.reintegrate(record)

    # -- statistics --------------------------------------------------------

    def lock_stats(self) -> Dict[str, float]:
        total = self.local_lock_requests
        return {
            # One-sided ops are message-free: every request is local.
            "local_share": 1.0,
            "remote_lock_requests": 0.0,
            "lock_requests": float(total),
            "mean_lock_wait": self.lock_wait_time.mean,
            "page_requests": float(self.page_requests),
            "mean_page_request_delay": self.page_request_delay.mean,
            "pages_supplied_with_grant": 0.0,
        }

    def reset_stats(self) -> None:
        self.lock_wait_time.reset()
        self.page_request_delay.reset()
        self.page_requests = 0
        self.page_requests_failed = 0
        self.local_lock_requests = 0
        self.plt.requests = 0
        self.plt.immediate_grants = 0
        self.plt.waits = 0
