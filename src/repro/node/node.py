"""The processing node: container wiring CPU, buffer, communication,
transaction management and message dispatch together (Fig. 3.1).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Set, TYPE_CHECKING

from repro.cc.base import CCProtocol
from repro.cc.messages import MessageHandler
from repro.db.pages import PageId
from repro.node.buffer_manager import BufferManager
from repro.node.comm import CommSubsystem
from repro.node.cpu import CpuPool
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource, Store
from repro.sim.stats import Counter, Tally

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.cluster import Cluster
    from repro.workload.transaction import Transaction

__all__ = ["Node"]


class Node:
    """One autonomous processing node of the database sharing system."""

    def __init__(self, sim: Simulator, node_id: int, cluster: "Cluster") -> None:
        self.sim = sim
        self.node_id = node_id
        self.cluster = cluster
        self.config = cluster.config
        self.database = cluster.database
        self.storage = cluster.storage
        config = cluster.config
        self.cpu = CpuPool(
            sim,
            config.cpus_per_node,
            config.mips_per_cpu,
            cluster.streams.stream(f"cpu-{node_id}"),
            name=f"node{node_id}.cpu",
        )
        self.buffer = BufferManager(self, config.buffer_pages_per_node, cluster.ledger)
        self.comm = CommSubsystem(sim, self, cluster)
        self.mailbox = Store(sim, name=f"node{node_id}.mailbox")
        self.mpl = Resource(sim, config.mpl_per_node, name=f"node{node_id}.mpl")
        self.recorder = cluster.recorder
        #: Set by the cluster once the protocol is constructed.
        self.protocol: Optional[CCProtocol] = None
        #: Read-authorization cache (populated by PCL when enabled).
        self.auth_cache: Dict[PageId, bool] = {}
        #: Sole-interest lock authorizations (populated by GEM locking).
        self.gem_auth: Set[PageId] = set()
        self._handlers: Dict[str, MessageHandler] = {}
        self._history_seq = 0
        # -- statistics ------------------------------------------------
        self.arrivals = Counter(f"node{node_id}.arrivals")
        self.completions = Counter(f"node{node_id}.completions")
        self.aborts = Counter(f"node{node_id}.aborts")
        self.response_time = Tally(f"node{node_id}.response_time")
        self.response_time_per_access = Tally(f"node{node_id}.rt_per_access")
        sim.process(self._dispatcher(), name=f"node{node_id}.dispatcher")

    # -- message dispatch --------------------------------------------------

    def register_handler(self, kind: str, handler: MessageHandler) -> None:
        self._handlers[kind] = handler

    def _dispatcher(self) -> Generator[Event, Any, None]:
        """Deliver incoming messages to protocol handlers.

        Each message is handled in its own process: a handler may block
        (e.g. a lock request waiting at this GLA) without stalling the
        delivery of further messages.
        """
        while True:
            message = yield self.mailbox.get()
            handler = self._handlers.get(message.kind)
            if handler is None:
                raise RuntimeError(
                    f"node {self.node_id}: no handler for message "
                    f"kind {message.kind!r}"
                )
            proc = self.sim.process(
                handler(self, message.payload), name=f"handle-{message.kind}"
            )
            faults = self.cluster.faults
            if faults is not None and proc.is_alive:
                faults.track_handler(self.node_id, proc)

    # -- HISTORY append cursor ------------------------------------------------

    def next_history_page(self, partition_index: int, blocking_factor: int) -> PageId:
        """Page id for the next HISTORY record appended at this node.

        Sequential files are appended per node (the paper synchronizes
        the file end with latches; per-node append pages give exactly
        the footnote's 95 % hit ratio for blocking factor 20).
        """
        page_no = (self.node_id << 40) | (self._history_seq // blocking_factor)
        self._history_seq += 1
        return (partition_index, page_no)

    # -- statistics ---------------------------------------------------------

    def record_completion(self, txn: "Transaction", response_time: float) -> None:
        self.completions.increment()
        self.response_time.record(response_time)
        if txn.num_accesses:
            self.response_time_per_access.record(response_time / txn.num_accesses)
        self.recorder.txn_end(txn.txn_id, self.sim.now)

    def cpu_utilization(self) -> float:
        return self.cpu.utilization()

    def reset_stats(self) -> None:
        self.cpu.reset_stats()
        self.buffer.reset_stats()
        self.comm.reset_stats()
        self.mpl.reset_stats()
        self.mailbox.reset_stats()
        self.arrivals.reset()
        self.completions.reset()
        self.aborts.reset()
        self.response_time.reset()
        self.response_time_per_access.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.node_id})"
