#!/usr/bin/env python3
"""Quickstart: simulate one closely coupled database sharing system.

Builds a 4-node shared-disk cluster that synchronizes through a global
lock table in GEM (close coupling), runs the debit-credit workload at
100 TPS per node with affinity-based routing and NOFORCE update
propagation, and prints the headline metrics.

Run:
    python examples/quickstart.py
"""

from repro import SystemConfig, run_simulation


def main() -> None:
    config = SystemConfig(
        num_nodes=4,
        coupling="gem",            # global lock table in GEM
        routing="affinity",        # BRANCH-partitioned workload allocation
        update_strategy="noforce", # log-only commits
        arrival_rate_per_node=100.0,
        buffer_pages_per_node=200,
        warmup_time=2.0,
        measure_time=8.0,
    )
    result = run_simulation(config)

    print(result.summary())
    print()
    print(f"completed transactions : {result.completed}")
    print(f"mean response time     : {result.response_time_ms:.1f} ms")
    print(f"throughput             : {result.throughput_total:.0f} TPS "
          f"({result.throughput_per_node:.0f} per node)")
    print(f"CPU utilization        : {result.cpu_utilization_avg:.0%} "
          f"(max node {result.cpu_utilization_max:.0%})")
    print(f"GEM utilization        : {result.gem_utilization:.1%}")
    print("buffer hit ratios      : "
          + ", ".join(f"{k}={v:.0%}" for k, v in result.hit_ratios.items()))
    print(f"lock requests / txn    : {result.lock_requests_per_txn:.2f} "
          f"(all served by the GEM lock table, no messages)")


if __name__ == "__main__":
    main()
