#!/usr/bin/env python3
"""Close vs loose coupling, side by side.

Runs the same debit-credit workload on a closely coupled system (GEM
locking: every lock request is two synchronous 2-microsecond entry
accesses to the global lock table) and a loosely coupled one (primary
copy locking: remote lock requests cost >= 20,000 instructions of
message processing), and contrasts the cost profile of concurrency and
coherency control -- the paper's central comparison (section 4.5).

Run:
    python examples/coupling_comparison.py [--nodes 8] [--routing random]
"""

import argparse

from repro import SystemConfig, run_simulation


def describe(label, r) -> None:
    print(f"--- {label}")
    print(f"  response time        : {r.response_time_ms:.1f} ms")
    print(f"  throughput           : {r.throughput_total:.0f} TPS")
    print(f"  CPU utilization      : {r.cpu_utilization_avg:.0%} "
          f"(hottest node {r.cpu_utilization_max:.0%})")
    print(f"  locks per txn        : {r.lock_requests_per_txn:.2f}")
    print(f"  locally processed    : {r.local_lock_share:.0%}")
    print(f"  messages per txn     : {r.messages_per_txn:.2f} "
          f"({r.messages_short_per_txn:.2f} short, "
          f"{r.messages_long_per_txn:.2f} long)")
    print(f"  page requests per txn: {r.page_requests_per_txn:.2f}"
          + (f" (mean delay {r.mean_page_request_delay * 1e3:.1f} ms)"
             if r.page_requests_per_txn else ""))
    print(f"  GEM utilization      : {r.gem_utilization:.1%}")
    print(f"  network utilization  : {r.network_utilization:.0%}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--routing", choices=["random", "affinity"],
                        default="random")
    parser.add_argument("--update", choices=["noforce", "force"],
                        default="noforce")
    args = parser.parse_args()

    base = SystemConfig(
        num_nodes=args.nodes,
        routing=args.routing,
        update_strategy=args.update,
        warmup_time=2.0,
        measure_time=6.0,
    )
    print(f"debit-credit, N={args.nodes}, {args.routing} routing, "
          f"{args.update.upper()}, {base.arrival_rate_per_node:.0f} TPS/node\n")

    gem = run_simulation(base.replace(coupling="gem"))
    pcl = run_simulation(base.replace(coupling="pcl"))
    describe("close coupling (GEM locking)", gem)
    describe("loose coupling (primary copy locking)", pcl)

    delta = (pcl.mean_response_time / gem.mean_response_time - 1) * 100
    print(f"PCL response time is {delta:+.0f}% vs GEM locking; the gap is "
          "driven by the message overhead of remote lock processing "
          "(the paper's section 4.5).")


if __name__ == "__main__":
    main()
