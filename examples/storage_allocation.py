#!/usr/bin/env python3
"""Hot-file placement study: where should BRANCH/TELLER live?

The debit-credit BRANCH/TELLER file is tiny (100 pages per node) but
takes a write per transaction -- it dominates I/O and coherency
behaviour.  This example places it on plain disks, behind a volatile
or non-volatile disk cache, or resident in GEM, and shows how the
choice interacts with the update strategy (the paper's sections
4.3/4.4): under FORCE, fast non-volatile storage absorbs the commit
force-writes and makes even random routing cheap; under NOFORCE the
placement hardly matters because misses are served by inter-node page
transfers.

Run:
    python examples/storage_allocation.py [--nodes 6] [--routing random]
"""

import argparse

from repro import DebitCreditConfig, SystemConfig, run_simulation
from repro.db.schema import StorageKind

PLACEMENTS = [
    ("plain disks", StorageKind.DISK),
    ("volatile disk cache", StorageKind.DISK_VOLATILE_CACHE),
    ("non-volatile disk cache", StorageKind.DISK_NONVOLATILE_CACHE),
    ("disks + GEM write buffer", StorageKind.DISK_GEM_WRITE_BUFFER),
    ("GEM resident", StorageKind.GEM),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=6)
    parser.add_argument("--routing", choices=["random", "affinity"],
                        default="random")
    parser.add_argument("--measure", type=float, default=5.0)
    args = parser.parse_args()

    print(f"debit-credit, N={args.nodes}, {args.routing} routing, "
          f"buffer 1000 pages/node\n")
    print(f"{'BRANCH/TELLER placement':>26} {'FORCE [ms]':>11} "
          f"{'NOFORCE [ms]':>13}")
    print("-" * 54)
    for label, storage in PLACEMENTS:
        row = [label]
        for update in ("force", "noforce"):
            config = SystemConfig(
                num_nodes=args.nodes,
                coupling="gem",
                routing=args.routing,
                update_strategy=update,
                buffer_pages_per_node=1000,
                debit_credit=DebitCreditConfig(branch_teller_storage=storage),
                warmup_time=1.5,
                measure_time=args.measure,
            )
            row.append(run_simulation(config).response_time_ms)
        print(f"{row[0]:>26} {row[1]:>11.1f} {row[2]:>13.1f}")
    print()
    print("FORCE: a non-volatile cache or GEM absorbs the force-writes "
          "and the read misses -- random routing stops hurting.")
    print("NOFORCE: placement is nearly irrelevant; stale/missing pages "
          "travel between nodes as page transfers.")


if __name__ == "__main__":
    main()
