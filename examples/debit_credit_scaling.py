#!/usr/bin/env python3
"""Scaling study: debit-credit response times from 1 to 10 nodes.

Reproduces the heart of the paper's Fig. 4.1 at example scale: how the
workload-allocation strategy (random vs affinity-based routing) and
the update strategy (FORCE vs NOFORCE) shape response times as the
system -- and with it the database, per the TPC scaling rules -- grows.

Watch for:
* flat curves under affinity routing (linear scalability),
* rising curves under random routing, driven by buffer invalidations
  on the hot BRANCH/TELLER file (the hit ratio column),
* FORCE paying for its synchronous force-writes at commit.

Run:
    python examples/debit_credit_scaling.py [--nodes 1 2 4 8]
"""

import argparse

from repro import SystemConfig, run_simulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--nodes", type=int, nargs="+", default=[1, 2, 4, 6, 8, 10]
    )
    parser.add_argument("--measure", type=float, default=5.0)
    args = parser.parse_args()

    print(f"{'N':>3} {'routing':>9} {'update':>8} {'RT [ms]':>9} "
          f"{'B/T hit':>8} {'inval/txn':>10} {'TPS':>7}")
    print("-" * 62)
    for routing in ("affinity", "random"):
        for update in ("noforce", "force"):
            for num_nodes in args.nodes:
                config = SystemConfig(
                    num_nodes=num_nodes,
                    coupling="gem",
                    routing=routing,
                    update_strategy=update,
                    warmup_time=1.5,
                    measure_time=args.measure,
                )
                r = run_simulation(config)
                print(
                    f"{num_nodes:>3} {routing:>9} {update:>8} "
                    f"{r.response_time_ms:>9.1f} "
                    f"{r.hit_ratios['BRANCH_TELLER']:>8.0%} "
                    f"{r.invalidations_per_txn['BRANCH_TELLER']:>10.2f} "
                    f"{r.throughput_total:>7.0f}"
                )
            print("-" * 62)


if __name__ == "__main__":
    main()
