#!/usr/bin/env python3
"""Define and run a custom synthetic workload.

The simulation system is not tied to debit-credit: this example builds
an order-entry style workload from scratch -- a hot STOCK file under a
Zipf access pattern, an ORDERS file taking inserts, and a long
analytic reader class -- and compares close vs loose coupling on it.

Run:
    python examples/custom_workload.py [--nodes 4]
"""

import argparse

from repro import SystemConfig, run_simulation
from repro.workload.synthetic import (
    AccessSpec,
    PartitionSpec,
    SyntheticWorkloadSpec,
    TransactionClass,
)


def build_spec(num_nodes: int) -> SyntheticWorkloadSpec:
    return SyntheticWorkloadSpec(
        partitions=[
            PartitionSpec("STOCK", 20_000, disks=8 * num_nodes),
            PartitionSpec("ORDERS", 200_000, disks=6 * num_nodes),
            PartitionSpec("CUSTOMER", 50_000, disks=4 * num_nodes),
        ],
        classes=[
            TransactionClass(
                "new-order",
                weight=10,
                accesses=[
                    AccessSpec("CUSTOMER", count=1, distribution="zipf",
                               zipf_theta=0.6),
                    AccessSpec("STOCK", count=8, write_probability=1.0,
                               distribution="zipf", zipf_theta=0.9),
                    AccessSpec("ORDERS", count=1, write_probability=1.0),
                ],
                affinity_node=0,
            ),
            TransactionClass(
                "payment",
                weight=10,
                accesses=[
                    AccessSpec("CUSTOMER", count=1, write_probability=1.0,
                               distribution="zipf", zipf_theta=0.6),
                ],
                affinity_node=1 % num_nodes,
            ),
            TransactionClass(
                "stock-scan",
                weight=1,
                accesses=[
                    AccessSpec("STOCK", count=150, distribution="zipf",
                               hot_fraction=0.3),
                ],
                affinity_node=2 % num_nodes,
            ),
        ],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--rate", type=float, default=40.0)
    parser.add_argument("--measure", type=float, default=5.0)
    args = parser.parse_args()

    base = SystemConfig(
        num_nodes=args.nodes,
        workload="synthetic",
        synthetic=build_spec(args.nodes),
        routing="affinity",
        update_strategy="noforce",
        arrival_rate_per_node=args.rate,
        buffer_pages_per_node=1000,
        warmup_time=1.5,
        measure_time=args.measure,
    )
    print(f"order-entry workload, N={args.nodes}, {args.rate:.0f} TPS/node\n")
    print(f"{'coupling':>9} {'RT [ms]':>9} {'locks/txn':>10} {'local':>7} "
          f"{'msgs/txn':>9} {'CPU':>5}")
    print("-" * 56)
    for coupling in ("gem", "pcl"):
        r = run_simulation(base.replace(coupling=coupling))
        print(f"{coupling:>9} {r.response_time_ms:>9.1f} "
              f"{r.lock_requests_per_txn:>10.1f} {r.local_lock_share:>7.0%} "
              f"{r.messages_per_txn:>9.2f} {r.cpu_utilization_avg:>5.0%}")
    print()
    print("Defining a workload takes ~30 lines; everything else -- "
          "buffering, coherency, devices -- is shared infrastructure.")


if __name__ == "__main__":
    main()
