#!/usr/bin/env python3
"""Trace-driven simulation study (the paper's section 4.6 workflow).

1. Synthesizes a "real-life" trace matching the aggregates the paper
   reports for its proprietary database trace (17,500 transactions of
   twelve types, ~1M references, 66k distinct pages in 13 files, 20 %
   update transactions, 1.6 % write references).
2. Computes an affinity routing table and a coordinated GLA assignment
   with the [Ra92b]-style heuristics.
3. Replays the trace on closely and loosely coupled clusters and
   reports the paper's Fig. 4.7 metrics.

Run:
    python examples/trace_study.py [--nodes 4] [--scale 0.1]
"""

import argparse

from repro import SystemConfig, TraceWorkloadConfig, run_simulation
from repro.sim import StreamRegistry
from repro.workload.tracegen import generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="trace shrink factor (1.0 = paper size)")
    parser.add_argument("--measure", type=float, default=5.0)
    args = parser.parse_args()

    trace_config = TraceWorkloadConfig(scale=args.scale)

    # -- step 1: inspect the synthetic trace --------------------------
    trace, _profiles, _sizes = generate_trace(
        trace_config, StreamRegistry(42).stream("tracegen")
    )
    print("synthetic trace (scaled by "
          f"{args.scale}): {len(trace)} transactions, "
          f"{trace.num_references():,} references")
    print(f"  types: {trace.num_types()}, mean size "
          f"{trace.mean_references():.1f}, largest {trace.max_references()}")
    print(f"  distinct pages: {trace.distinct_pages():,} "
          f"in {trace.num_files} files")
    print(f"  update txns: {trace.update_transaction_fraction():.0%}, "
          f"write references: {trace.write_reference_fraction():.1%}")
    print()

    # -- steps 2+3: replay under both couplings ------------------------
    base = SystemConfig(
        num_nodes=args.nodes,
        workload="trace",
        update_strategy="noforce",
        arrival_rate_per_node=50.0,
        buffer_pages_per_node=1000,
        trace=trace_config,
        warmup_time=1.5,
        measure_time=args.measure,
    )
    print(f"{'config':>16} {'RT-artif [ms]':>14} {'local locks':>12} "
          f"{'msgs/txn':>9} {'CPU avg/max':>12}")
    print("-" * 70)
    for coupling in ("gem", "pcl"):
        for routing in ("affinity", "random"):
            config = base.replace(
                coupling=coupling,
                routing=routing,
                pcl_read_optimization=(coupling == "pcl"),
            )
            r = run_simulation(config)
            print(
                f"{coupling + '/' + routing:>16} "
                f"{r.mean_response_time_artificial * 1000:>14.0f} "
                f"{r.local_lock_share:>12.0%} "
                f"{r.messages_per_txn:>9.1f} "
                f"{r.cpu_utilization_avg:>6.0%}/{r.cpu_utilization_max:.0%}"
            )
    print()
    print("Close coupling (gem) wins on both routings; the read "
          "optimization keeps PCL's affinity share high, but its "
          "message overhead still costs response time and CPU "
          "(the paper's Fig. 4.7).")


if __name__ == "__main__":
    main()
