"""Ablation: NOFORCE page transfers across GEM instead of messages.

The paper's conclusions propose the extension: "Using GEM for
implementing the page transfers would also improve coherency control
performance for NOFORCE."  This ablation runs GEM locking with random
routing (the configuration with the most page transfers) both ways.

Expectations: GEM-mediated transfers eliminate the page-transfer
messages (8000 + 8000 instructions and network time) in favour of two
synchronous 50-microsecond GEM page accesses, cutting message counts
to zero and trimming response time.
"""

from benchmarks.conftest import run_once
from repro.system.config import SystemConfig
from repro.system.runner import run_simulation


def run_pair(scale):
    base = SystemConfig(
        num_nodes=max(scale.node_counts),
        coupling="gem",
        routing="random",
        update_strategy="noforce",
        buffer_pages_per_node=1000,
        warmup_time=scale.warmup_time,
        measure_time=scale.measure_time,
    )
    via_messages = run_simulation(base)
    via_gem = run_simulation(base.replace(page_transfer_via_gem=True))
    return via_messages, via_gem


def test_ablation_page_transfer_via_gem(benchmark, scale):
    via_messages, via_gem = run_once(benchmark, lambda: run_pair(scale))
    print()
    print(f"page transfers via messages: RT={via_messages.response_time_ms:.1f} ms, "
          f"msgs/txn={via_messages.messages_per_txn:.2f}, "
          f"page reqs/txn={via_messages.page_requests_per_txn:.2f}, "
          f"delay={via_messages.mean_page_request_delay * 1000:.1f} ms")
    print(f"page transfers via GEM     : RT={via_gem.response_time_ms:.1f} ms, "
          f"msgs/txn={via_gem.messages_per_txn:.2f}, "
          f"page reqs/txn={via_gem.page_requests_per_txn:.2f}, "
          f"delay={via_gem.mean_page_request_delay * 1000:.1f} ms, "
          f"GEM util={via_gem.gem_utilization:.1%}")

    # Both configurations exercise page transfers at all.
    assert via_messages.page_requests_per_txn > 0.2
    assert via_gem.page_requests_per_txn > 0.2
    # The GEM path removes the message exchanges entirely.
    assert via_gem.messages_per_txn < via_messages.messages_per_txn * 0.3
    # ... and is much faster per transfer.
    assert (
        via_gem.mean_page_request_delay
        < via_messages.mean_page_request_delay * 0.5
    )
    # Response time does not get worse.
    assert via_gem.mean_response_time <= via_messages.mean_response_time * 1.05
