"""Shared wall-clock measurement helpers for the benchmark suites.

Timing noise on shared machines dominates single measurements: ambient
load routinely moves run times by 15% or more.  Every timing consumer
in this repository therefore follows the same discipline, centralized
here:

* warm up first (imports, allocator pools, branch caches);
* repeat the measurement and keep the *best* run -- the minimum is the
  estimate least contaminated by external load, because noise on a
  busy box is strictly additive;
* when comparing two builds, interleave their runs (A B A B ...) so
  slow ambient drift hits both sides equally, and compare the medians.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, List, NamedTuple, Tuple

__all__ = ["TimingResult", "time_best", "time_interleaved"]


class TimingResult(NamedTuple):
    """Wall-clock samples of one measured callable (seconds)."""

    best: float
    mean: float
    runs: Tuple[float, ...]

    @property
    def median(self) -> float:
        return statistics.median(self.runs)


def time_best(
    fn: Callable[[], object], repeats: int = 3, warmup: int = 1
) -> TimingResult:
    """Time ``fn`` after ``warmup`` unmeasured calls; keep all samples.

    ``repeats`` must be >= 1.  Use ``result.best`` as the headline
    number and ``result.runs`` to judge the spread.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    runs: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - started)
    return TimingResult(min(runs), sum(runs) / len(runs), tuple(runs))


def time_interleaved(
    fn_a: Callable[[], object],
    fn_b: Callable[[], object],
    pairs: int = 3,
    warmup: int = 1,
) -> Tuple[TimingResult, TimingResult]:
    """Time two callables in alternation (A B A B ...).

    Interleaving is the honest way to compare two builds on a noisy
    machine: ambient slowdowns span neighbouring runs, so they cancel
    in the ratio of the two medians instead of biasing one side.
    """
    if pairs < 1:
        raise ValueError("pairs must be >= 1")
    for _ in range(warmup):
        fn_a()
        fn_b()
    runs_a: List[float] = []
    runs_b: List[float] = []
    for _ in range(pairs):
        started = time.perf_counter()
        fn_a()
        runs_a.append(time.perf_counter() - started)
        started = time.perf_counter()
        fn_b()
        runs_b.append(time.perf_counter() - started)
    return (
        TimingResult(min(runs_a), sum(runs_a) / len(runs_a), tuple(runs_a)),
        TimingResult(min(runs_b), sum(runs_b) / len(runs_b), tuple(runs_b)),
    )
