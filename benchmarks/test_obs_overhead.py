"""Benchmark: tracing-hook overhead with tracing disabled.

The span hooks sit on the hottest paths (every CPU consume, every
buffer access, every lock wait).  With tracing off they dispatch to the
shared null recorder, which must keep the fig 4.1 fast point within a
few percent of an uninstrumented run.  The wall-clock guard is generous
(timing noise on shared CI boxes); the structural assertions are exact.
"""

from benchmarks.conftest import run_once
from benchmarks.timing import time_best
from repro.experiments import fig41
from repro.obs import NULL_RECORDER
from repro.obs.recorder import _NULL_SPAN
from repro.system.cluster import Cluster
from repro.system.runner import run_simulation


def fast_point(**overrides):
    config = fig41.base_config().replace(
        num_nodes=2,
        routing="affinity",
        update_strategy="noforce",
        warmup_time=0.5,
        measure_time=1.5,
        collect_breakdown=False,
    )
    return config.replace(**overrides) if overrides else config


def test_disabled_hooks_are_the_shared_null_recorder():
    cluster = Cluster(fast_point())
    assert cluster.recorder is NULL_RECORDER
    for node in cluster.nodes:
        assert node.recorder is NULL_RECORDER
    # span() allocates nothing: it always returns the same object.
    assert cluster.recorder.span(1, "cpu") is _NULL_SPAN


def test_disabled_overhead_under_five_percent(benchmark):
    config = fast_point()
    run_simulation(config)  # warm caches/imports outside the timing

    def timed(cfg, repeats=3):
        return time_best(lambda: run_simulation(cfg), repeats=repeats, warmup=0).best

    disabled = run_once(benchmark, lambda: timed(config))
    enabled = timed(config.replace(collect_breakdown=True))
    print(f"\ndisabled {disabled * 1e3:.1f} ms, enabled {enabled * 1e3:.1f} ms")
    # The acceptance criterion is <5% vs the uninstrumented baseline;
    # within one process we can only compare against the enabled path,
    # which bounds the hooks' dispatch cost from above.  Allow slack for
    # scheduler noise.
    assert disabled <= enabled * 1.05
