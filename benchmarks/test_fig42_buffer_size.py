"""Benchmark: Fig. 4.2 -- influence of buffer size (random routing).

Shape assertions (section 4.3):

* the larger buffer helps most in the central case (it can hold all
  BRANCH/TELLER pages: optimal hit ratio);
* the central-case improvement shrinks (relatively) with more nodes --
  replicated caching erodes the larger buffer's effectiveness;
* NOFORCE benefits more from the larger buffer than FORCE at scale.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig42


import dataclasses


def test_fig42_buffer_size(benchmark, scale):
    # The 1000-page buffer needs a longer warm-up to reach its steady
    # hit ratio (every BRANCH/TELLER page must have been touched once).
    scale = dataclasses.replace(scale, warmup_time=3.0)
    result = run_once(benchmark, lambda: fig42.run(scale))
    print()
    print(result.table())

    rt = lambda series, n: result.series_by_label(series).value_at(
        n, lambda r: r.response_time_ms
    )
    hit = lambda series, n: result.series_by_label(series).value_at(
        n, lambda r: r.hit_ratios["BRANCH_TELLER"]
    )
    last = max(scale.node_counts)

    # Central case: buffer 1000 holds the whole B/T partition (the
    # asymptotic ratio is ~100 %; the short bench window keeps a small
    # residue of first-touch misses).
    assert hit("NOFORCE/buf1000", 1) > 0.9
    assert hit("NOFORCE/buf1000", 1) > hit("NOFORCE/buf200", 1) + 0.1
    assert hit("NOFORCE/buf200", 1) < 0.85

    # The big buffer's hit-ratio advantage erodes with more nodes.
    advantage_central = hit("FORCE/buf1000", 1) - hit("FORCE/buf200", 1)
    advantage_scaled = hit("FORCE/buf1000", last) - hit("FORCE/buf200", last)
    assert advantage_scaled < advantage_central

    # Buffer 1000 never hurts, and helps the central case visibly.
    assert rt("FORCE/buf1000", 1) < rt("FORCE/buf200", 1)

    # At scale, NOFORCE retains more of the larger buffer's benefit
    # than FORCE (misses become page requests, not disk reads).
    force_gain = rt("FORCE/buf200", last) - rt("FORCE/buf1000", last)
    noforce_gain = rt("NOFORCE/buf200", last) - rt("NOFORCE/buf1000", last)
    force_relative = force_gain / rt("FORCE/buf200", last)
    noforce_relative = noforce_gain / rt("NOFORCE/buf200", last)
    assert noforce_relative > force_relative - 0.05
