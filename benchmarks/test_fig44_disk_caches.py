"""Benchmark: Fig. 4.4 -- disk caches for BRANCH/TELLER (FORCE).

Shape assertions (section 4.4):

* a non-volatile disk cache achieves almost the same response times as
  the GEM allocation (for both routings);
* a volatile disk cache removes the read-miss penalty: it helps random
  routing but does (almost) nothing for affinity routing at buffer
  1000;
* plain disks remain the slowest option under random routing.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig44


def test_fig44_disk_caches(benchmark, scale):
    result = run_once(benchmark, lambda: fig44.run(scale))
    print()
    print(result.table())

    rt = lambda series, n: result.series_by_label(series).value_at(
        n, lambda r: r.response_time_ms
    )
    last = max(scale.node_counts)

    # Non-volatile cache ~ GEM allocation.
    for routing in ("affinity", "random"):
        nv = rt(f"{routing}/disk_nvcache", last)
        gem = rt(f"{routing}/gem", last)
        assert abs(nv - gem) / gem < 0.15, (routing, nv, gem)

    # Volatile cache helps random routing (read misses hit the shared
    # cache) ...
    assert rt("random/disk_vcache", last) < rt("random/disk", last) * 0.9
    # ... but not affinity routing (no misses at buffer 1000).
    affinity_disk = rt("affinity/disk", last)
    affinity_v = rt("affinity/disk_vcache", last)
    assert abs(affinity_v - affinity_disk) / affinity_disk < 0.12

    # Random routing with a volatile cache approaches affinity routing.
    assert rt("random/disk_vcache", last) < rt("affinity/disk_vcache", last) * 1.2

    # Plain disks stay slowest under random routing.
    assert rt("random/disk", last) > rt("random/disk_nvcache", last)
