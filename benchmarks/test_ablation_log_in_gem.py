"""Ablation: GEM-resident log files.

Section 2: "the best I/O performance is obtained if non-volatile
extended memory is used to keep entire database or log files resident
in semiconductor memory ... all disk accesses are avoided for the
respective files."  This ablation moves the per-node log from a 5 ms
log disk to GEM (~50 us synchronous page write) and measures the
commit-path saving for both update strategies.
"""

from benchmarks.conftest import run_once
from repro.system.config import SystemConfig
from repro.system.runner import run_simulation


def run_quad(scale):
    results = {}
    for update in ("noforce", "force"):
        base = SystemConfig(
            num_nodes=2,
            coupling="gem",
            routing="affinity",
            update_strategy=update,
            warmup_time=scale.warmup_time,
            measure_time=max(scale.measure_time, 4.0),
        )
        results[(update, "disk")] = run_simulation(base)
        results[(update, "gem")] = run_simulation(base.replace(log_in_gem=True))
    return results


def test_ablation_log_in_gem(benchmark, scale):
    results = run_once(benchmark, lambda: run_quad(scale))
    print()
    for (update, log), r in sorted(results.items()):
        print(f"{update}/log-{log}: RT={r.response_time_ms:.1f} ms, "
              f"log-disk util={r.log_disk_utilization_max:.0%}, "
              f"GEM util={r.gem_utilization:.2%}")

    for update in ("noforce", "force"):
        disk = results[(update, "disk")]
        gem = results[(update, "gem")]
        # The log write (~6.4 ms + queuing) leaves the commit path.
        assert gem.mean_response_time < disk.mean_response_time - 0.003
        assert gem.log_disk_utilization_max == 0.0
        # GEM remains far from saturation.
        assert gem.gem_utilization < 0.1
