"""Benchmark: Table 4.1 -- parameter settings and single-node anchor.

Regenerates the parameter table and runs the central configuration,
checking the facts the paper derives from the parameters (CPU
utilization >= 62.5 % at 100 TPS, HISTORY hit ratio 95 %, BRANCH/
TELLER hit ratio ~71 % at buffer 200, three page accesses/txn).
"""

from benchmarks.conftest import run_once
from repro.experiments import table41
from repro.system.config import SystemConfig


def test_table41_parameters_and_anchor_run(benchmark, scale):
    config = SystemConfig()
    for key, value in table41.parameter_rows(config):
        print(f"{key:<22} {value}")

    result = run_once(benchmark, lambda: table41.run(scale))
    print()
    print(result.summary())
    checks = table41.validate(result)
    for check, ok in checks.items():
        print(f"  {'PASS' if ok else 'FAIL'}  {check}")
    assert all(checks.values()), checks
