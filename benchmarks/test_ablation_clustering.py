"""Ablation: clustering TELLER records with their BRANCH record.

Section 3.1: clustering stores the TELLERs in their BRANCH's page,
reducing the page accesses per transaction from four to three and the
page locks from three to two, and improving hit ratios.  All of the
paper's experiments use the clustered layout; this ablation quantifies
what it buys.
"""

from benchmarks.conftest import run_once
from repro.system.config import DebitCreditConfig, SystemConfig
from repro.system.runner import run_simulation


def run_pair(scale):
    base = SystemConfig(
        num_nodes=2,
        coupling="gem",
        routing="affinity",
        update_strategy="noforce",
        warmup_time=scale.warmup_time,
        measure_time=max(scale.measure_time, 4.0),
    )
    clustered = run_simulation(base)
    unclustered = run_simulation(
        base.replace(debit_credit=DebitCreditConfig(cluster_branch_teller=False))
    )
    return clustered, unclustered


def test_ablation_branch_teller_clustering(benchmark, scale):
    clustered, unclustered = run_once(benchmark, lambda: run_pair(scale))
    print()
    print(f"clustered  : RT={clustered.response_time_ms:.1f} ms, "
          f"page accesses/txn={clustered.mean_accesses_per_txn:.2f}, "
          f"locks/txn={clustered.lock_requests_per_txn:.2f}")
    print(f"unclustered: RT={unclustered.response_time_ms:.1f} ms, "
          f"page accesses/txn={unclustered.mean_accesses_per_txn:.2f}, "
          f"locks/txn={unclustered.lock_requests_per_txn:.2f}")

    # Three page accesses with clustering, four without.
    assert abs(clustered.mean_accesses_per_txn - 3.0) < 0.15
    assert abs(unclustered.mean_accesses_per_txn - 4.0) < 0.15
    # One page lock fewer with clustering (2 vs 3).
    assert (
        unclustered.lock_requests_per_txn
        > clustered.lock_requests_per_txn + 0.7
    )
    # Clustering never hurts response time.
    assert clustered.mean_response_time <= unclustered.mean_response_time * 1.05
