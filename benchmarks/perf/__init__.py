"""Committed performance trajectory of the simulation engine.

``driver`` measures raw engine throughput (events/second, wall-clock,
peak RSS) on a fixed fig 4.6-style workload at 8-, 64- and 256-node
scales and writes a ``BENCH_<date>.json`` snapshot; ``compare`` checks
a fresh snapshot against a committed one and flags regressions.

The committed snapshots at the repository root form the perf
trajectory: every PR that touches the hot paths regenerates a snapshot
on the same machine and compares against the last one, so speedups and
regressions are visible in review rather than discovered months later.

Machine caveat: absolute events/sec are only comparable between
snapshots taken on the same machine under similar load.  Cross-machine
comparisons (e.g. CI) must use a wide tolerance and treat the result
as a smoke check, not a measurement; see EXPERIMENTS.md for the
methodology.
"""
