"""Perf snapshot driver: measure engine throughput, emit BENCH JSON.

Usage (from the repository root)::

    PYTHONPATH=src:. python -m benchmarks.perf.driver \
        --out BENCH_$(date +%F).json --date $(date +%F)

The workload is the fig 4.6 operating point (GEM locking, affinity
routing, NOFORCE, buffer 1000, arrival rate near 80% CPU utilization)
run open-loop at a fixed arrival rate, so every snapshot simulates the
identical event sequence per scale and wall-clock differences are pure
engine speed.  Scales and windows are pinned here -- do not vary them
between snapshots, or the numbers stop being comparable.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
from typing import Any, Dict, Optional, Sequence, Tuple

from benchmarks.timing import time_best
from repro.system.config import SystemConfig
from repro.system.parallel import CODE_VERSION
from repro.system.runner import run_simulation

__all__ = ["SCALES", "SCHEMA_VERSION", "fig46_workload", "measure_scale", "snapshot"]

SCHEMA_VERSION = 1

#: Per-scale (warmup_time, measure_time) in simulated seconds.  Windows
#: shrink with node count so a snapshot finishes in about a minute; the
#: event totals per scale stay fixed across snapshots regardless.
SCALES: Dict[int, Tuple[float, float]] = {
    8: (0.5, 1.5),
    64: (0.25, 0.75),
    256: (0.1, 0.3),
}

#: The workload's fixed parameters (fig 4.6 operating point).
WORKLOAD: Dict[str, Any] = {
    "experiment": "fig46-style",
    "coupling": "gem",
    "routing": "affinity",
    "update_strategy": "noforce",
    "buffer_pages_per_node": 1000,
    "arrival_rate_per_node": 170.0,
    "random_seed": 42,
}


def fig46_workload(
    num_nodes: int, warmup_time: float, measure_time: float
) -> SystemConfig:
    """The pinned benchmark configuration at ``num_nodes`` nodes."""
    return SystemConfig(
        num_nodes=num_nodes,
        coupling=WORKLOAD["coupling"],
        routing=WORKLOAD["routing"],
        update_strategy=WORKLOAD["update_strategy"],
        buffer_pages_per_node=WORKLOAD["buffer_pages_per_node"],
        arrival_rate_per_node=WORKLOAD["arrival_rate_per_node"],
        warmup_time=warmup_time,
        measure_time=measure_time,
        random_seed=WORKLOAD["random_seed"],
    )


def measure_scale(num_nodes: int, repeats: int = 3) -> Dict[str, Any]:
    """Measure one scale; returns its snapshot entry."""
    warmup_time, measure_time = SCALES[num_nodes]
    config = fig46_workload(num_nodes, warmup_time, measure_time)
    events = 0
    completed = 0

    def run() -> None:
        nonlocal events, completed
        result = run_simulation(config)
        events = result.events_processed
        completed = result.completed

    timing = time_best(run, repeats=repeats, warmup=1)
    return {
        "num_nodes": num_nodes,
        "warmup_time": warmup_time,
        "measure_time": measure_time,
        "repeats": repeats,
        "events_processed": events,
        "completed_txns": completed,
        "events_per_txn": events / completed if completed else 0.0,
        "wall_clock_s": timing.best,
        "events_per_sec": events / timing.best,
        "wall_clock_runs_s": list(timing.runs),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def snapshot(
    date: str,
    scales: Sequence[int] = (8, 64, 256),
    repeats: int = 3,
    label: str = "",
    baseline: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Measure all requested scales and assemble the snapshot dict.

    ``date`` is supplied by the caller (shell ``date +%F``) rather than
    read from the clock here, keeping the module itself clock-free.
    """
    result: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "date": date,
        "label": label,
        "code_version": CODE_VERSION,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workload": dict(WORKLOAD),
        "scales": {},
    }
    for num_nodes in scales:
        if num_nodes not in SCALES:
            raise ValueError(
                f"unknown scale {num_nodes}; pinned scales: {sorted(SCALES)}"
            )
        entry = measure_scale(num_nodes, repeats=repeats)
        result["scales"][str(num_nodes)] = entry
        print(
            f"  {num_nodes:4d} nodes: {entry['events_processed']:>9d} events, "
            f"{entry['events_per_txn']:.1f} events/txn, "
            f"{entry['wall_clock_s']:.3f} s best, "
            f"{entry['events_per_sec']:,.0f} events/s",
            file=sys.stderr,
        )
    if baseline is not None:
        result["baseline"] = baseline
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="output JSON path")
    parser.add_argument(
        "--date", required=True, help="snapshot date, YYYY-MM-DD (use date +%%F)"
    )
    parser.add_argument(
        "--scales", type=int, nargs="+", default=[8, 64, 256],
        help="node counts to measure (default: 8 64 256)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--label", default="", help="free-form snapshot label")
    args = parser.parse_args(argv)
    result = snapshot(
        args.date, scales=args.scales, repeats=args.repeats, label=args.label
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
