"""Compare a fresh perf snapshot against a committed baseline.

Usage::

    PYTHONPATH=src:. python -m benchmarks.perf.compare \
        /tmp/bench_now.json --baseline BENCH_2026-08-08.json

Exit status 1 when any common scale regressed by more than the
tolerance, 0 otherwise.  A missing baseline is not an error: the first
snapshot of a repository has nothing to compare against, and CI must
not fail on that.

The default tolerance is deliberately wide (15%): wall-clock noise on
shared machines routinely reaches that level even with best-of-N
timing.  A regression this check flags is therefore a real one; small
regressions must be caught by regenerating the committed snapshot on
the reference machine instead (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "SnapshotFormatError",
    "compare_snapshots",
    "find_latest_snapshot",
    "load_snapshot",
    "validate_snapshot",
]

_REQUIRED_TOP = ("schema", "date", "workload", "scales")
_REQUIRED_SCALE = (
    "num_nodes",
    "events_processed",
    "wall_clock_s",
    "events_per_sec",
    "peak_rss_kb",
)


class SnapshotFormatError(ValueError):
    """A snapshot file does not match the BENCH schema."""


def validate_snapshot(data: Dict[str, Any]) -> None:
    """Raise :class:`SnapshotFormatError` unless ``data`` is a valid snapshot."""
    for key in _REQUIRED_TOP:
        if key not in data:
            raise SnapshotFormatError(f"missing top-level key {key!r}")
    if data["schema"] != 1:
        raise SnapshotFormatError(f"unsupported schema version {data['schema']!r}")
    date = data["date"]
    if (
        not isinstance(date, str)
        or len(date) != 10
        or date[4] != "-"
        or date[7] != "-"
        or not (date[:4] + date[5:7] + date[8:]).isdigit()
    ):
        raise SnapshotFormatError(f"date {date!r} is not YYYY-MM-DD")
    scales = data["scales"]
    if not isinstance(scales, dict) or not scales:
        raise SnapshotFormatError("scales must be a non-empty object")
    for name, entry in scales.items():
        if not name.isdigit():
            raise SnapshotFormatError(f"scale key {name!r} is not a node count")
        for key in _REQUIRED_SCALE:
            if key not in entry:
                raise SnapshotFormatError(f"scale {name}: missing {key!r}")
        if entry["num_nodes"] != int(name):
            raise SnapshotFormatError(f"scale {name}: num_nodes mismatch")
        if entry["events_processed"] <= 0:
            raise SnapshotFormatError(f"scale {name}: events_processed must be > 0")
        if entry["wall_clock_s"] <= 0 or entry["events_per_sec"] <= 0:
            raise SnapshotFormatError(f"scale {name}: timings must be positive")


def load_snapshot(path: Path) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    validate_snapshot(data)
    return data


def find_latest_snapshot(directory: Path) -> Optional[Path]:
    """The lexically newest ``BENCH_*.json`` in ``directory``, if any.

    Snapshot names embed an ISO date, so lexical order is date order.
    """
    candidates = sorted(directory.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def compare_snapshots(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.15,
) -> List[Dict[str, Any]]:
    """Per-scale comparison rows; ``regressed`` set where it matters.

    Scales present in only one snapshot are skipped: a snapshot taken
    with ``--scales 8`` must still be comparable against a full one.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    rows: List[Dict[str, Any]] = []
    for name in sorted(current["scales"], key=int):
        if name not in baseline["scales"]:
            continue
        cur = current["scales"][name]
        base = baseline["scales"][name]
        ratio = cur["events_per_sec"] / base["events_per_sec"]
        rows.append(
            {
                "scale": int(name),
                "current_events_per_sec": cur["events_per_sec"],
                "baseline_events_per_sec": base["events_per_sec"],
                "ratio": ratio,
                "regressed": ratio < 1.0 - tolerance,
                "same_events": (
                    cur["events_processed"] == base["events_processed"]
                ),
            }
        )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="fresh snapshot JSON")
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline snapshot (default: newest BENCH_*.json in --baseline-dir)",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=Path("."),
        help="directory searched for committed snapshots",
    )
    parser.add_argument("--tolerance", type=float, default=0.15)
    args = parser.parse_args(argv)

    current = load_snapshot(args.current)
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = find_latest_snapshot(args.baseline_dir)
        if baseline_path is not None and baseline_path.resolve() == (
            args.current.resolve()
        ):
            # Comparing the first committed snapshot against itself
            # would always "pass"; treat it as no baseline instead.
            baseline_path = None
    if baseline_path is None:
        print("no baseline snapshot found; nothing to compare", file=sys.stderr)
        return 0
    baseline = load_snapshot(baseline_path)

    rows = compare_snapshots(current, baseline, tolerance=args.tolerance)
    if not rows:
        print("no common scales between snapshots", file=sys.stderr)
        return 0
    regressed = False
    for row in rows:
        verdict = "REGRESSED" if row["regressed"] else "ok"
        regressed = regressed or row["regressed"]
        drift = "" if row["same_events"] else "  [event count changed!]"
        print(
            f"{row['scale']:4d} nodes: {row['current_events_per_sec']:>12,.0f} ev/s"
            f" vs {row['baseline_events_per_sec']:>12,.0f} ev/s"
            f"  ({row['ratio']:.2f}x)  {verdict}{drift}"
        )
    return 1 if regressed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
