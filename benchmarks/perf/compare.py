"""Compare perf snapshots: regression check and trajectory trend.

Usage::

    PYTHONPATH=src:. python -m benchmarks.perf.compare \
        /tmp/bench_now.json --baseline BENCH_2026-08-08.json

    PYTHONPATH=src:. python -m benchmarks.perf.compare --trend

Exit status 1 when any common scale regressed by more than the
tolerance, 0 otherwise.  A missing baseline is not an error: the first
snapshot of a repository has nothing to compare against, and CI must
not fail on that.

The default tolerance is deliberately wide (15%): wall-clock noise on
shared machines routinely reaches that level even with best-of-N
timing.  A regression this check flags is therefore a real one; small
regressions must be caught by regenerating the committed snapshot on
the reference machine instead (see EXPERIMENTS.md).

Snapshots record the engine's ``code_version``.  When an optimization
changes the simulated event sequence (a *re-anchor*, see
EXPERIMENTS.md), events/sec is no longer comparable across the bump:
the comparison refuses to cross code versions unless the newer
snapshot carries a ``baseline`` block documenting the re-anchor with
same-machine A/B wall-clock evidence, in which case the per-scale
events/sec check is skipped in its favour.

``--trend`` renders the whole committed trajectory (every
``BENCH_*.json``) as one table -- date, code version, baseline commit,
events/sec per scale -- with re-anchor boundaries marked.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "SnapshotFormatError",
    "compare_snapshots",
    "crosses_reanchor",
    "find_latest_snapshot",
    "load_snapshot",
    "trend_rows",
    "trend_table",
    "validate_snapshot",
]

_REQUIRED_TOP = ("schema", "date", "workload", "scales")
_REQUIRED_SCALE = (
    "num_nodes",
    "events_processed",
    "wall_clock_s",
    "events_per_sec",
    "peak_rss_kb",
)


class SnapshotFormatError(ValueError):
    """A snapshot file does not match the BENCH schema."""


def validate_snapshot(data: Dict[str, Any]) -> None:
    """Raise :class:`SnapshotFormatError` unless ``data`` is a valid snapshot."""
    for key in _REQUIRED_TOP:
        if key not in data:
            raise SnapshotFormatError(f"missing top-level key {key!r}")
    if data["schema"] != 1:
        raise SnapshotFormatError(f"unsupported schema version {data['schema']!r}")
    date = data["date"]
    if (
        not isinstance(date, str)
        or len(date) != 10
        or date[4] != "-"
        or date[7] != "-"
        or not (date[:4] + date[5:7] + date[8:]).isdigit()
    ):
        raise SnapshotFormatError(f"date {date!r} is not YYYY-MM-DD")
    scales = data["scales"]
    if not isinstance(scales, dict) or not scales:
        raise SnapshotFormatError("scales must be a non-empty object")
    for name, entry in scales.items():
        if not name.isdigit():
            raise SnapshotFormatError(f"scale key {name!r} is not a node count")
        for key in _REQUIRED_SCALE:
            if key not in entry:
                raise SnapshotFormatError(f"scale {name}: missing {key!r}")
        if entry["num_nodes"] != int(name):
            raise SnapshotFormatError(f"scale {name}: num_nodes mismatch")
        if entry["events_processed"] <= 0:
            raise SnapshotFormatError(f"scale {name}: events_processed must be > 0")
        if entry["wall_clock_s"] <= 0 or entry["events_per_sec"] <= 0:
            raise SnapshotFormatError(f"scale {name}: timings must be positive")


def load_snapshot(path: Path) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    validate_snapshot(data)
    return data


def find_latest_snapshot(directory: Path) -> Optional[Path]:
    """The lexically newest ``BENCH_*.json`` in ``directory``, if any.

    Snapshot names embed an ISO date, so lexical order is date order.
    """
    candidates = sorted(directory.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def crosses_reanchor(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> bool:
    """True when the two snapshots were taken on different engine anchors.

    ``code_version`` is bumped whenever an optimization changes the
    simulated event sequence; snapshots predating the field count as
    their own (unknown) anchor.  Events/sec must not be compared across
    anchors -- the event totals differ by construction.
    """
    return current.get("code_version") != baseline.get("code_version")


def trend_rows(snapshots: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One trend row per snapshot, in the given (chronological) order.

    Each row carries the snapshot date, engine ``code_version``, the
    baseline commit it was anchored against (when recorded), the
    per-scale events/sec, and ``reanchored`` -- True when the snapshot
    starts a new code-version anchor, i.e. its events/sec must not be
    read as a ratio against the previous row.
    """
    rows: List[Dict[str, Any]] = []
    previous_version: Optional[str] = None
    for index, snap in enumerate(snapshots):
        baseline = snap.get("baseline") or {}
        version = snap.get("code_version")
        rows.append(
            {
                "date": snap["date"],
                "label": snap.get("label", ""),
                "code_version": version,
                "baseline_commit": baseline.get("commit"),
                "events_per_sec": {
                    name: entry["events_per_sec"]
                    for name, entry in snap["scales"].items()
                },
                "reanchored": index > 0 and version != previous_version,
            }
        )
        previous_version = version
    return rows


def trend_table(snapshots: Sequence[Dict[str, Any]]) -> str:
    """The committed perf trajectory as a fixed-width text table."""
    rows = trend_rows(snapshots)
    scale_names = sorted(
        {name for row in rows for name in row["events_per_sec"]}, key=int
    )
    header = (
        f"{'date':<12}{'code version':<14}{'base commit':<13}"
        + "".join(f"{name + ' nodes':>14}" for name in scale_names)
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        if row["reanchored"]:
            lines.append(
                f"-- re-anchor: code version {row['code_version'] or '?'} "
                "(events/sec not comparable across this line) --"
            )
        cells = "".join(
            f"{row['events_per_sec'][name]:>14,.0f}"
            if name in row["events_per_sec"]
            else f"{'-':>14}"
            for name in scale_names
        )
        lines.append(
            f"{row['date']:<12}{row['code_version'] or '-':<14}"
            f"{row['baseline_commit'] or '-':<13}{cells}"
        )
    return "\n".join(lines)


def compare_snapshots(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.15,
) -> List[Dict[str, Any]]:
    """Per-scale comparison rows; ``regressed`` set where it matters.

    Scales present in only one snapshot are skipped: a snapshot taken
    with ``--scales 8`` must still be comparable against a full one.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    rows: List[Dict[str, Any]] = []
    for name in sorted(current["scales"], key=int):
        if name not in baseline["scales"]:
            continue
        cur = current["scales"][name]
        base = baseline["scales"][name]
        ratio = cur["events_per_sec"] / base["events_per_sec"]
        rows.append(
            {
                "scale": int(name),
                "current_events_per_sec": cur["events_per_sec"],
                "baseline_events_per_sec": base["events_per_sec"],
                "ratio": ratio,
                "regressed": ratio < 1.0 - tolerance,
                "same_events": (
                    cur["events_processed"] == base["events_processed"]
                ),
            }
        )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "current", type=Path, nargs="?", default=None,
        help="fresh snapshot JSON (omit with --trend)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline snapshot (default: newest BENCH_*.json in --baseline-dir)",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=Path("."),
        help="directory searched for committed snapshots",
    )
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument(
        "--trend", action="store_true",
        help="print the committed perf trajectory (all BENCH_*.json in "
             "--baseline-dir, plus the current snapshot if given) as a "
             "trend table instead of comparing",
    )
    args = parser.parse_args(argv)

    if args.trend:
        paths = sorted(args.baseline_dir.glob("BENCH_*.json"))
        if args.current is not None and args.current.resolve() not in (
            p.resolve() for p in paths
        ):
            paths.append(args.current)
        if not paths:
            print("no BENCH_*.json snapshots found", file=sys.stderr)
            return 0
        print(trend_table([load_snapshot(path) for path in paths]))
        return 0
    if args.current is None:
        parser.error("a current snapshot is required unless --trend is given")

    current = load_snapshot(args.current)
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = find_latest_snapshot(args.baseline_dir)
        if baseline_path is not None and baseline_path.resolve() == (
            args.current.resolve()
        ):
            # Comparing the first committed snapshot against itself
            # would always "pass"; treat it as no baseline instead.
            baseline_path = None
    if baseline_path is None:
        print("no baseline snapshot found; nothing to compare", file=sys.stderr)
        return 0
    baseline = load_snapshot(baseline_path)

    if crosses_reanchor(current, baseline):
        cur_version = current.get("code_version")
        base_version = baseline.get("code_version")
        if current.get("baseline"):
            print(
                f"re-anchor: code version {base_version!r} -> {cur_version!r}; "
                "events/sec is not comparable across the bump.  The current "
                "snapshot documents the re-anchor in its 'baseline' block "
                "(same-machine A/B wall clock); skipping the per-scale check.",
                file=sys.stderr,
            )
            return 0
        print(
            f"ERROR: snapshots span a re-anchor (code version {base_version!r} "
            f"vs {cur_version!r}) and the current snapshot has no 'baseline' "
            "block.  The event sequence changed, so events/sec ratios are "
            "meaningless here: re-measure with interleaved A/B wall clock on "
            "one machine and record it in the snapshot's 'baseline' block "
            "(see EXPERIMENTS.md, 're-anchoring the trajectory').",
            file=sys.stderr,
        )
        return 1

    rows = compare_snapshots(current, baseline, tolerance=args.tolerance)
    if not rows:
        print("no common scales between snapshots", file=sys.stderr)
        return 0
    regressed = False
    for row in rows:
        verdict = "REGRESSED" if row["regressed"] else "ok"
        regressed = regressed or row["regressed"]
        drift = "" if row["same_events"] else "  [event count changed!]"
        print(
            f"{row['scale']:4d} nodes: {row['current_events_per_sec']:>12,.0f} ev/s"
            f" vs {row['baseline_events_per_sec']:>12,.0f} ev/s"
            f"  ({row['ratio']:.2f}x)  {verdict}{drift}"
        )
    return 1 if regressed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
