"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table/figure of the paper at a reduced
scale (fewer node counts, shorter measurement windows) so the whole
suite stays runnable in minutes, prints the paper-shaped rows, and
asserts the figure's qualitative shape.  For paper-sized runs use the
experiment drivers directly (``python -m repro.experiments.fig41``)
with ``Scale.full()``.
"""

import pytest

from repro.experiments.common import Scale


def bench_scale() -> Scale:
    """Node counts and windows used by the benchmark suite."""
    return Scale(
        node_counts=(1, 2, 4),
        warmup_time=1.0,
        measure_time=3.0,
        trace_scale=0.06,
        throughput_iterations=3,
    )


@pytest.fixture
def scale() -> Scale:
    return bench_scale()


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (simulations are deterministic and long)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
