"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table/figure of the paper at a reduced
scale (fewer node counts, shorter measurement windows) so the whole
suite stays runnable in minutes, prints the paper-shaped rows, and
asserts the figure's qualitative shape.  For paper-sized runs use the
experiment drivers directly (``python -m repro.experiments.fig41``)
with ``Scale.full()``.
"""

import os

import pytest

from repro.experiments.common import Scale
from repro.system.parallel import SweepRunner


def bench_jobs() -> int:
    """Worker processes for benchmark sweeps (REPRO_BENCH_JOBS, default 1).

    Results are bit-identical for any job count; raising this only
    changes wall-clock time, so it is safe for comparative runs on
    multi-core machines.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@pytest.fixture
def runner():
    """A cache-less sweep runner honouring REPRO_BENCH_JOBS."""
    with SweepRunner(jobs=bench_jobs()) as sweep_runner:
        yield sweep_runner


def bench_scale() -> Scale:
    """Node counts and windows used by the benchmark suite."""
    return Scale(
        node_counts=(1, 2, 4),
        warmup_time=1.0,
        measure_time=3.0,
        trace_scale=0.06,
        throughput_iterations=3,
    )


@pytest.fixture
def scale() -> Scale:
    return bench_scale()


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (simulations are deterministic and long)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
