"""Benchmark: Fig. 4.1 -- workload allocation and update strategy.

Shape assertions (section 4.2):

* affinity curves stay (nearly) flat in the number of nodes;
* random-routing response times exceed affinity at N >= 4;
* FORCE lies above NOFORCE for every routing;
* the BRANCH/TELLER hit ratio collapses under random routing;
* GEM utilization stays negligible.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig41


def test_fig41_routing_and_update_strategy(benchmark, scale, runner):
    result = run_once(benchmark, lambda: fig41.run(scale, runner=runner))
    print()
    print(result.table())

    rt = lambda series, n: result.series_by_label(series).value_at(
        n, lambda r: r.response_time_ms
    )
    last = max(scale.node_counts)

    # Affinity: flat response times despite linear throughput growth.
    for update in ("NOFORCE", "FORCE"):
        base = rt(f"affinity/{update}", 1)
        assert rt(f"affinity/{update}", last) < base * 1.35, (
            f"affinity/{update} not flat"
        )

    # FORCE above NOFORCE everywhere.
    for routing in ("affinity", "random"):
        for n in scale.node_counts:
            assert rt(f"{routing}/FORCE", n) > rt(f"{routing}/NOFORCE", n)

    # Random routing worse than affinity at scale (FORCE suffers most).
    assert rt("random/FORCE", last) > rt("affinity/FORCE", last) * 1.1

    # Hit-ratio collapse under random routing.
    random_force = result.series_by_label("random/FORCE")
    bt_hit = lambda n: random_force.value_at(
        n, lambda r: r.hit_ratios["BRANCH_TELLER"]
    )
    assert bt_hit(1) > 0.6  # ~71% centrally
    assert bt_hit(last) < 0.45

    # GEM locking delay is negligible: utilization tiny at full load.
    assert random_force.value_at(last, lambda r: r.gem_utilization) < 0.05
