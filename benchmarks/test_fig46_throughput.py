"""Benchmark: Fig. 4.6 -- throughput per node at 80 % CPU utilization.

Shape assertions (section 4.5):

* affinity routing: throughput per node stays roughly flat for both
  couplings (linear scaling);
* random routing: PCL sustains noticeably less throughput than GEM
  locking (paper: about 15 % less);
* under random routing, FORCE sustains more throughput than NOFORCE
  for GEM locking (page requests/transfers cost more CPU than I/Os).
"""

from benchmarks.conftest import run_once
from repro.experiments.common import ExperimentResult, Scale, Series
from repro.system.config import SystemConfig
from repro.system.runner import find_throughput_at_utilization


def run_reduced(scale: Scale) -> ExperimentResult:
    """Fig 4.6 at a single multi-node point per curve (bench budget)."""
    num_nodes = max(scale.node_counts)
    series = []
    for coupling in ("gem", "pcl"):
        for routing in ("affinity", "random"):
            for update in ("noforce", "force"):
                config = SystemConfig(
                    num_nodes=num_nodes,
                    coupling=coupling,
                    routing=routing,
                    update_strategy=update,
                    buffer_pages_per_node=1000,
                    warmup_time=scale.warmup_time,
                    measure_time=scale.measure_time,
                )
                result = find_throughput_at_utilization(
                    config,
                    target_utilization=0.80,
                    # At least six halvings: the search grid must be
                    # finer than the ~15 % PCL/GEM throughput gap.
                    max_iterations=max(scale.throughput_iterations, 6),
                    rate_bounds=(80.0, 200.0),
                )
                current = Series(f"{coupling}/{routing}/{update.upper()}")
                current.points.append((num_nodes, result))
                series.append(current)
    return ExperimentResult(
        "Fig 4.6",
        f"TPS per node at ~80% CPU utilization (N={num_nodes}, buffer 1000)",
        series,
        metric_label="TPS per node",
        metric=lambda r: r.throughput_per_node,
    )


def test_fig46_throughput_at_80pct(benchmark, scale):
    result = run_once(benchmark, lambda: run_reduced(scale))
    print()
    print(result.table())

    tput = {
        s.label: s.points[0][1].throughput_per_node for s in result.series
    }
    for label, value in sorted(tput.items()):
        print(f"  {label}: {value:.1f} TPS/node")

    # PCL pays for its messages under random routing.
    assert tput["pcl/random/NOFORCE"] < tput["gem/random/NOFORCE"]
    assert tput["pcl/random/FORCE"] < tput["gem/random/FORCE"]

    # Affinity routing: both couplings sustain comparable rates.
    assert (
        abs(tput["pcl/affinity/NOFORCE"] - tput["gem/affinity/NOFORCE"])
        / tput["gem/affinity/NOFORCE"]
        < 0.15
    )

    # GEM locking under random routing: FORCE beats NOFORCE (the page
    # requests/transfers of NOFORCE cost more CPU than FORCE's I/Os).
    assert tput["gem/random/FORCE"] > tput["gem/random/NOFORCE"] * 0.98
