"""Benchmark: Fig. 4.5 -- PCL vs GEM locking (response times).

Shape assertions (section 4.5):

* affinity routing: PCL ~ GEM locking (local lock shares > 90 %);
* random routing: PCL worse than GEM locking, gap grows with N;
* PCL's locally processed share under random routing ~ 1/N;
* the PCL/GEM gap is smaller for NOFORCE than for FORCE.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig45


def test_fig45_pcl_vs_gem(benchmark, scale):
    # The bench sweeps buffer 200 only (buffer 1000 behaviour is
    # covered by fig42/fig43 benches); the full driver does both.
    result = run_once(benchmark, lambda: fig45.run(scale, buffer_sizes=(200,)))
    print()
    print(result.table())

    rt = lambda series, n: result.series_by_label(series).value_at(
        n, lambda r: r.response_time_ms
    )
    share = lambda series, n: result.series_by_label(series).value_at(
        n, lambda r: r.local_lock_share
    )
    last = max(scale.node_counts)

    # Affinity: loose coupling matches close coupling.
    for update in ("NOFORCE", "FORCE"):
        gem = rt(f"gem/affinity/{update}/buf200", last)
        pcl = rt(f"pcl/affinity/{update}/buf200", last)
        assert abs(pcl - gem) / gem < 0.12, (update, gem, pcl)
    assert share("pcl/affinity/NOFORCE/buf200", last) > 0.9

    # Random: PCL worse, and the gap grows with the number of nodes.
    for update in ("NOFORCE", "FORCE"):
        gap_small = rt(f"pcl/random/{update}/buf200", 2) - rt(
            f"gem/random/{update}/buf200", 2
        )
        gap_large = rt(f"pcl/random/{update}/buf200", last) - rt(
            f"gem/random/{update}/buf200", last
        )
        assert gap_large > 0
        assert gap_large >= gap_small - 2.0  # widening (noise tolerant)

    # Local share ~ 1/N under random routing (paper: 50% at 2 nodes).
    assert abs(share("pcl/random/NOFORCE/buf200", 2) - 0.5) < 0.08
    assert share("pcl/random/NOFORCE/buf200", last) < 0.5

    # Both update strategies show a clear PCL disadvantage of similar
    # magnitude.  (The paper additionally reports the NOFORCE gap as
    # the smaller one at buffer 200; our reproduction matches that
    # ordering at buffer 1000 but not reliably at buffer 200 -- the
    # asynchronous write-back daemon cleans pages faster than the
    # paper's model, which reduces GEM locking's page-request traffic;
    # see EXPERIMENTS.md.)
    gap_force = rt("pcl/random/FORCE/buf200", last) - rt(
        "gem/random/FORCE/buf200", last
    )
    gap_noforce = rt("pcl/random/NOFORCE/buf200", last) - rt(
        "gem/random/NOFORCE/buf200", last
    )
    assert gap_noforce > 0 and gap_force > 0
    assert gap_noforce <= gap_force + 12.0
