"""Ablation: PCL read optimization on the trace workload.

Section 4.6: without the read optimization, the share of locally
processable locks for PCL drops sharply with the number of nodes; the
optimization "allowed a local processing for 78 % (65 %) of the locks
for 2 nodes and 65 % (33 %) for 8 nodes with affinity-based (random)
routing".  This ablation runs the trace workload with the optimization
on and off.
"""


from benchmarks.conftest import run_once
from repro.system.config import SystemConfig, TraceWorkloadConfig
from repro.system.runner import run_simulation


def run_pair(scale):
    base = SystemConfig(
        num_nodes=4,
        coupling="pcl",
        routing="affinity",
        update_strategy="noforce",
        workload="trace",
        arrival_rate_per_node=50.0,
        buffer_pages_per_node=1000,
        trace=TraceWorkloadConfig(scale=max(scale.trace_scale, 0.08)),
        warmup_time=scale.warmup_time,
        measure_time=max(scale.measure_time, 4.0),
    )
    without = run_simulation(base)
    with_opt = run_simulation(base.replace(pcl_read_optimization=True))
    return without, with_opt


def test_ablation_pcl_read_optimization(benchmark, scale):
    without, with_opt = run_once(benchmark, lambda: run_pair(scale))
    print()
    print(f"read opt OFF: local={without.local_lock_share:.0%}, "
          f"msgs/txn={without.messages_per_txn:.1f}, "
          f"RTa={without.mean_response_time_artificial * 1000:.0f} ms, "
          f"CPU={without.cpu_utilization_avg:.0%}")
    print(f"read opt ON : local={with_opt.local_lock_share:.0%}, "
          f"msgs/txn={with_opt.messages_per_txn:.1f}, "
          f"RTa={with_opt.mean_response_time_artificial * 1000:.0f} ms, "
          f"CPU={with_opt.cpu_utilization_avg:.0%}")

    # The optimization raises the locally processed share materially.
    assert with_opt.local_lock_share > without.local_lock_share + 0.05
    # Fewer messages follow directly.
    assert with_opt.messages_per_txn < without.messages_per_txn
    # And the communication CPU load drops.
    assert (
        with_opt.cpu_utilization_avg
        <= without.cpu_utilization_avg + 0.01
    )
