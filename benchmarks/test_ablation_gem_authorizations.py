"""Ablation: GEM lock authorizations (the section-2 refinement).

The paper evaluates the *simple* scheme -- every lock request against
the GLT -- and sketches a refinement that authorizes local lock
managers to process sole-interest requests without GEM accesses.  This
ablation measures the refinement's two faces:

* under affinity routing, nearly all pages are of sole interest: GEM
  entry traffic collapses;
* under random routing, authorizations thrash between nodes and the
  revocation message exchanges make the refinement a net loss --
  consistent with the paper's choice to evaluate the simple scheme,
  whose cost is already negligible.
"""

from benchmarks.conftest import run_once
from repro.system.config import SystemConfig
from repro.system.runner import run_simulation


def run_quad(scale):
    results = {}
    for routing in ("affinity", "random"):
        base = SystemConfig(
            num_nodes=max(scale.node_counts),
            coupling="gem",
            routing=routing,
            update_strategy="noforce",
            warmup_time=scale.warmup_time,
            measure_time=scale.measure_time,
        )
        results[(routing, "plain")] = run_simulation(base)
        results[(routing, "auth")] = run_simulation(
            base.replace(gem_lock_authorizations=True)
        )
    return results


def test_ablation_gem_lock_authorizations(benchmark, scale):
    results = run_once(benchmark, lambda: run_quad(scale))
    print()
    for (routing, variant), r in sorted(results.items()):
        print(f"{routing}/{variant}: RT={r.response_time_ms:.1f} ms, "
              f"GEM util={r.gem_utilization:.2%}, msgs/txn={r.messages_per_txn:.2f}")

    # Affinity: GEM traffic collapses, response time unharmed.
    assert (
        results[("affinity", "auth")].gem_utilization
        < results[("affinity", "plain")].gem_utilization * 0.7
    )
    assert (
        results[("affinity", "auth")].mean_response_time
        < results[("affinity", "plain")].mean_response_time * 1.05
    )

    # Random: revocation messages appear (the refinement's cost side).
    assert (
        results[("random", "auth")].messages_per_txn
        > results[("random", "plain")].messages_per_txn
    )
