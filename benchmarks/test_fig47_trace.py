"""Benchmark: Fig. 4.7 -- PCL vs GEM locking, real-life workload.

Shape assertions (section 4.6):

* close coupling outperforms loose coupling for both routings at
  scale, with the gap widening in the number of nodes;
* random routing deteriorates relative to affinity routing (replicated
  caching reduces buffer effectiveness);
* PCL's locally processable lock share falls with the number of nodes
  even under affinity routing;
* PCL's CPU utilization is substantially higher and more unbalanced
  than GEM locking's.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig47


import dataclasses


def test_fig47_trace_workload(benchmark, scale):
    # A slightly larger trace and window than the default bench scale:
    # the per-access response-time metric is dominated by a handful of
    # very large (ad-hoc query) transactions and needs the extra mass.
    scale = dataclasses.replace(scale, trace_scale=0.10, measure_time=4.0)
    result = run_once(benchmark, lambda: fig47.run(scale))
    print()
    print(result.table())

    metric = lambda r: r.mean_response_time_artificial * 1000.0
    rt = lambda series, n: result.series_by_label(series).value_at(n, metric)
    node_counts = [n for n, _ in result.series[0].points]
    last = max(node_counts)

    # Close coupling beats loose coupling at scale for both routings
    # (wider tolerance under random routing: the giant ad-hoc
    # transactions make the artificial-transaction metric noisy at
    # bench scale).
    assert rt("gem/affinity", last) < rt("pcl/affinity", last) * 1.05
    assert rt("gem/random", last) < rt("pcl/random", last) * 1.15

    # Random routing deteriorates vs affinity (buffer effectiveness).
    assert rt("gem/random", last) > rt("gem/affinity", last) * 1.3

    # PCL local share falls with N, even under affinity routing.
    pcl_affinity = result.series_by_label("pcl/affinity")
    shares = [r.local_lock_share for _n, r in pcl_affinity.points]
    assert shares[0] >= shares[-1]
    assert shares[-1] < 0.999

    # PCL burns more CPU than GEM locking, and less evenly.
    pcl_random = result.series_by_label("pcl/random").points[-1][1]
    gem_random = result.series_by_label("gem/random").points[-1][1]
    assert pcl_random.cpu_utilization_avg > gem_random.cpu_utilization_avg
    assert pcl_random.cpu_utilization_max >= pcl_random.cpu_utilization_avg

    # Low update activity: deadlocks and invalidations negligible
    # (the scaled-down page universe concentrates writes, so a small
    # residue is tolerated at bench scale).
    assert pcl_random.deadlocks <= 5
