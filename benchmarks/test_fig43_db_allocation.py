"""Benchmark: Fig. 4.3 -- influence of database allocation.

Shape assertions (section 4.4):

* NOFORCE: allocating BRANCH/TELLER to GEM changes almost nothing;
* FORCE: the GEM allocation improves response times clearly, above all
  for random routing;
* FORCE + GEM allocation brings random routing close to affinity
  routing and removes the response-time growth over the central case.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig43


def test_fig43_database_allocation(benchmark, scale):
    result = run_once(benchmark, lambda: fig43.run(scale))
    print()
    print(result.table())

    rt = lambda series, n: result.series_by_label(series).value_at(
        n, lambda r: r.response_time_ms
    )
    last = max(scale.node_counts)

    # NOFORCE: GEM allocation is nearly irrelevant (within 15 %).
    for routing in ("affinity", "random"):
        disk = rt(f"NOFORCE/{routing}/disk", last)
        gem = rt(f"NOFORCE/{routing}/gem", last)
        assert abs(disk - gem) / disk < 0.15, (routing, disk, gem)

    # FORCE: GEM allocation helps clearly, most for random routing.
    force_random_disk = rt("FORCE/random/disk", last)
    force_random_gem = rt("FORCE/random/gem", last)
    assert force_random_gem < force_random_disk * 0.85
    force_affinity_gem = rt("FORCE/affinity/gem", last)
    # Random ~ affinity once the hot file lives in GEM.
    assert force_random_gem < force_affinity_gem * 1.15

    # ... and the growth over the central case disappears.
    assert rt("FORCE/random/gem", last) < rt("FORCE/random/gem", 1) * 1.25
